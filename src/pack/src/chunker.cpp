#include "stash/pack/chunker.hpp"

#include <array>

namespace stash::pack {

namespace {

/// Buzhash window: long enough that the cut decision sees real content,
/// short enough that boundaries re-synchronize quickly after an edit.
constexpr std::size_t kWindowBytes = 48;

/// Per-byte mixing table, generated once from splitmix64 so the hash is a
/// fixed function of the byte values (no process-to-process variation).
const std::array<std::uint64_t, 256>& byte_table() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (auto& v : t) {
      state += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      v = z ^ (z >> 31);
    }
    return t;
  }();
  return table;
}

constexpr std::uint64_t rotl(std::uint64_t v, unsigned s) noexcept {
  return (v << s) | (v >> (64 - s));
}

}  // namespace

std::vector<ChunkSpan> chunk_spans(std::span<const std::uint8_t> data,
                                   const ChunkerConfig& config) {
  std::vector<ChunkSpan> spans;
  const auto& table = byte_table();
  // Normalized chunking (the FastCDC refinement): a stricter mask before
  // the average point, a looser one past it.  The loose tail mask is what
  // keeps pathological inputs content-defined — with a single mask, data
  // whose only qualifying window sits inside the min_bytes dead zone
  // degenerates into forced max_bytes cuts, which are alignment-defined
  // (not content-defined) and defeat dedup entirely.
  const std::uint64_t strict_mask = (std::uint64_t{config.avg_bytes} * 2) - 1;
  const std::uint64_t loose_mask = (config.avg_bytes / 2) - 1;
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t limit =
        std::min<std::size_t>(data.size() - start, config.max_bytes);
    std::size_t len = limit;
    if (limit >= config.min_bytes) {
      // Roll the hash from the chunk start; only consult it past min_bytes
      // so no cut can fire early.  The window is cyclic: the byte leaving
      // the window is rotated all the way around and removed.
      std::uint64_t h = 0;
      std::size_t cut = 0;
      for (std::size_t i = 0; i < limit; ++i) {
        h = rotl(h, 1) ^ table[data[start + i]];
        if (i >= kWindowBytes) {
          h ^= rotl(table[data[start + i - kWindowBytes]],
                    static_cast<unsigned>(kWindowBytes % 64));
        }
        if (i + 1 >= config.min_bytes) {
          const std::uint64_t mask =
              (i + 1 < config.avg_bytes) ? strict_mask : loose_mask;
          if ((h & mask) == mask) {
            cut = i + 1;
            break;
          }
        }
      }
      if (cut != 0) len = cut;
    }
    spans.push_back({start, len});
    start += len;
  }
  return spans;
}

}  // namespace stash::pack
