#include "stash/pack/codec.hpp"

#include <algorithm>
#include <cstring>

namespace stash::pack {

using util::ErrorCode;

namespace {

// ---- Varints (LEB128) ------------------------------------------------------

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) return false;
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // over-long encoding
}

// ---- LZ match finder -------------------------------------------------------

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kMaxChainSteps = 48;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t limit) noexcept {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

// ---- Range coder (adaptive binary, LZMA-style) -----------------------------

constexpr std::uint32_t kProbBits = 11;
constexpr std::uint32_t kProbInit = 1u << (kProbBits - 1);
constexpr std::uint32_t kProbMoveBits = 5;
constexpr std::uint32_t kTopValue = 1u << 24;

class RangeEncoder {
 public:
  explicit RangeEncoder(std::vector<std::uint8_t>& out) : out_(out) {}

  void encode_bit(std::uint16_t& prob, std::uint32_t bit) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    if (bit == 0) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(
          prob + (((1u << kProbBits) - prob) >> kProbMoveBits));
    } else {
      low_ += bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kProbMoveBits));
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      shift_low();
    }
  }

  void flush() {
    for (int i = 0; i < 5; ++i) shift_low();
  }

 private:
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xff000000u ||
        static_cast<std::uint32_t>(low_ >> 32) != 0) {
      std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
      do {
        out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
        cache_ = 0xff;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00ffffffu) << 8;
  }

  std::vector<std::uint8_t>& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const std::uint8_t> in) : in_(in) {
    // The encoder's first emitted byte is the initial (zero) cache; skip
    // it, then seed the code register.
    next_byte();
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
  }

  std::uint32_t decode_bit(std::uint16_t& prob) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    std::uint32_t bit;
    if (code_ < bound) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(
          prob + (((1u << kProbBits) - prob) >> kProbMoveBits));
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kProbMoveBits));
      bit = 1;
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

 private:
  /// Truncated streams pad with zero: bounded, wrong, and caught by the
  /// caller's digest check.
  std::uint8_t next_byte() noexcept {
    return pos_ < in_.size() ? in_[pos_++] : 0;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xffffffffu;
};

/// 255-node bit tree: one adaptive context per prefix of the byte.
struct ByteModel {
  std::vector<std::uint16_t> probs = std::vector<std::uint16_t>(256, kProbInit);
};

}  // namespace

// ---- LZ --------------------------------------------------------------------

// Token stream: repeated [lit_len varint][literals][mlenz varint] where
// mlenz == 0 terminates the stream and mlenz == n > 0 means a match of
// (n - 1 + kMinMatch) bytes, followed by [distance varint].

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 2 + 16);
  std::vector<std::uint32_t> head(std::size_t{1} << kHashBits, 0xffffffffu);
  std::vector<std::uint32_t> chain(data.size(), 0xffffffffu);

  std::size_t pos = 0;
  std::size_t lit_start = 0;
  const auto emit = [&](std::size_t match_len, std::size_t dist) {
    put_varint(out, pos - lit_start);
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(lit_start),
               data.begin() + static_cast<std::ptrdiff_t>(pos));
    if (match_len == 0) {
      put_varint(out, 0);
    } else {
      put_varint(out, match_len - kMinMatch + 1);
      put_varint(out, dist);
    }
  };

  while (pos + kMinMatch <= data.size()) {
    const std::uint32_t h = hash4(data.data() + pos);
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    std::uint32_t cand = head[h];
    const std::size_t limit =
        std::min(kMaxMatch, data.size() - pos);
    for (std::size_t step = 0;
         cand != 0xffffffffu && step < kMaxChainSteps; ++step) {
      const std::size_t len =
          match_length(data.data() + cand, data.data() + pos, limit);
      if (len > best_len) {
        best_len = len;
        best_dist = pos - cand;
        if (len == limit) break;
      }
      cand = chain[cand];
    }
    chain[pos] = head[h];
    head[h] = static_cast<std::uint32_t>(pos);
    if (best_len >= kMinMatch) {
      emit(best_len, best_dist);
      // Insert the skipped positions into the hash chains so later matches
      // can still land inside this match.
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1;
           p < end && p + kMinMatch <= data.size(); ++p) {
        const std::uint32_t hp = hash4(data.data() + p);
        chain[p] = head[hp];
        head[hp] = static_cast<std::uint32_t>(p);
      }
      pos = end;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  pos = data.size();
  emit(0, 0);
  return out;
}

Result<std::vector<std::uint8_t>> lz_decompress(
    std::span<const std::uint8_t> stream, std::size_t expected_size) {
  const Status corrupt{ErrorCode::kCorrupted, "LZ token stream malformed"};
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  for (;;) {
    std::uint64_t lit_len = 0;
    if (!get_varint(stream, pos, lit_len)) return corrupt;
    if (lit_len > stream.size() - pos ||
        out.size() + lit_len > expected_size) {
      return corrupt;
    }
    out.insert(out.end(), stream.begin() + static_cast<std::ptrdiff_t>(pos),
               stream.begin() + static_cast<std::ptrdiff_t>(pos + lit_len));
    pos += lit_len;
    std::uint64_t mlenz = 0;
    if (!get_varint(stream, pos, mlenz)) return corrupt;
    if (mlenz == 0) break;
    std::uint64_t dist = 0;
    if (!get_varint(stream, pos, dist)) return corrupt;
    const std::uint64_t match_len = mlenz - 1 + kMinMatch;
    if (dist == 0 || dist > out.size() ||
        out.size() + match_len > expected_size) {
      return corrupt;
    }
    // Byte-by-byte copy: overlapping matches (dist < match_len) replicate.
    std::size_t from = out.size() - static_cast<std::size_t>(dist);
    for (std::uint64_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + static_cast<std::size_t>(i)]);
    }
  }
  if (pos != stream.size() || out.size() != expected_size) return corrupt;
  return out;
}

// ---- Range coder -----------------------------------------------------------

std::vector<std::uint8_t> rc_compress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 2 + 8);
  ByteModel model;
  RangeEncoder enc(out);
  for (const std::uint8_t byte : data) {
    std::uint32_t ctx = 1;
    for (int bit = 7; bit >= 0; --bit) {
      const std::uint32_t b = (byte >> bit) & 1;
      enc.encode_bit(model.probs[ctx], b);
      ctx = (ctx << 1) | b;
    }
  }
  enc.flush();
  return out;
}

std::vector<std::uint8_t> rc_decompress(std::span<const std::uint8_t> stream,
                                        std::size_t expected_size) {
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  ByteModel model;
  RangeDecoder dec(stream);
  for (std::size_t i = 0; i < expected_size; ++i) {
    std::uint32_t ctx = 1;
    for (int bit = 0; bit < 8; ++bit) {
      ctx = (ctx << 1) | dec.decode_bit(model.probs[ctx]);
    }
    out.push_back(static_cast<std::uint8_t>(ctx & 0xff));
  }
  return out;
}

}  // namespace stash::pack
