#pragma once
// StegoVolume: the §9.2 steganographic system sketched by the paper, made
// concrete.  A publicly visible volume (page-mapped FTL over the flash
// chip, assumed encrypted by the normal user) coexists with a hidden volume
// embedded in the voltage levels of the public pages via VT-HI.
//
// Properties reproduced from the paper:
//  * Key-only recovery: no persistent metadata — mounting scans candidate
//    blocks and authenticates chunks with the hiding key (§9.2 "Metadata
//    Persistence and Security").
//  * Migration survival: when the FTL garbage-collects or wear-levels a
//    block carrying hidden data, the volume rescues the chunk before the
//    erase and re-embeds it into freshly written public data (§5.1).
//  * Panic erase: destroying the hidden volume is one erase per block
//    ("almost instantaneous", §1).

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "stash/crypto/drbg.hpp"
#include "stash/ftl/ftl.hpp"
#include "stash/nand/chip.hpp"
#include "stash/util/status.hpp"
#include "stash/vthi/codec.hpp"

namespace stash::stego {

using util::Result;
using util::Status;

struct StegoStats {
  std::uint64_t rescues = 0;      // hidden chunks lifted out of GC victims
  std::uint64_t reembeds = 0;     // chunks re-embedded into new blocks
  std::uint64_t lost_chunks = 0;  // chunks that could not be re-homed
  /// Embeds whose read-back verification failed (worn carrier rejected);
  /// the chunk was retried elsewhere or kept pending, never lost.
  std::uint64_t failed_embeds = 0;
};

/// Aggregate configuration of one steganographic volume: the public FTL's
/// knobs plus the hidden channel's.  Follows the uniform config contract
/// (see FtlConfig::validate): validate() is checked by the StegoVolume
/// constructor, which throws std::invalid_argument on a non-OK status.
struct StegoConfig {
  ftl::FtlConfig ftl;
  vthi::VthiConfig vthi = vthi::VthiConfig::production();

  [[nodiscard]] Status validate() const {
    STASH_RETURN_IF_ERROR(ftl.validate());
    return vthi.validate();
  }
};

class StegoVolume {
 public:
  StegoVolume(nand::FlashChip& chip, const crypto::HidingKey& key,
              StegoConfig config = {});
  /// Convenience overload for call sites configuring only one layer.
  StegoVolume(nand::FlashChip& chip, const crypto::HidingKey& key,
              ftl::FtlConfig ftl_config,
              vthi::VthiConfig vthi_config = vthi::VthiConfig::production())
      : StegoVolume(chip, key, StegoConfig{ftl_config, vthi_config}) {}

  // ---- Public (normal user) volume ---------------------------------------
  Status write_public(std::uint64_t lpn, std::span<const std::uint8_t> bits);
  Result<std::vector<std::uint8_t>> read_public(std::uint64_t lpn);
  [[nodiscard]] std::uint64_t public_pages() const noexcept {
    return ftl_.logical_pages();
  }
  [[nodiscard]] std::uint32_t page_bits() const noexcept {
    return ftl_.page_bits();
  }

  // ---- Hidden (hiding user) volume ---------------------------------------

  /// An in-flight two-generation replacement of the hidden payload: the new
  /// chunk set is fully embedded (and read-back verified) while the old one
  /// stays loadable, then exactly one of commit/abort releases the loser.
  /// Obtained from prepare_store_hidden(); at most one may be active per
  /// volume.
  struct HiddenTxn {
    std::vector<std::uint32_t> new_blocks;
    std::set<std::uint32_t> old_blocks;
    bool active = false;
  };

  /// Store (or atomically replace) the hidden payload.  Splits it into
  /// per-block chunks and embeds each into a block full of public data;
  /// the previous payload is released only after every new chunk verified,
  /// so a failed store leaves the old payload loadable.
  Status store_hidden(std::span<const std::uint8_t> data);

  /// Phase 1 of a replace: embed and verify the complete new chunk set
  /// alongside the old one.  On failure the new partial embedding is
  /// scrubbed and the volume is unchanged.  Callers coordinating several
  /// volumes (StashDevice's multi-chip store) prepare everywhere before
  /// committing anywhere.
  Result<HiddenTxn> prepare_store_hidden(std::span<const std::uint8_t> data);
  /// Phase 2a: release the superseded generation (best-effort scrubs; the
  /// new payload is already durable and verified).
  Status commit_store_hidden(HiddenTxn& txn);
  /// Phase 2b: scrub the prepared new generation and keep the old payload.
  Status abort_store_hidden(HiddenTxn& txn);

  /// Scrub and untrack every hidden chunk (locating them with a key-only
  /// scan first when this instance tracks none).  Unlike panic_erase the
  /// public data sharing the carrier blocks is left intact.
  Status discard_hidden();

  /// Recover the hidden payload with nothing but the key: scans candidate
  /// blocks, authenticates each chunk, reassembles in order.
  Result<std::vector<std::uint8_t>> load_hidden();

  /// Destroy all hidden data (and the public data sharing its blocks).
  Status panic_erase();

  /// Re-embed any chunks rescued from relocated blocks.  Called
  /// automatically after public writes; exposed for deterministic tests.
  Status reembed_pending();

  [[nodiscard]] std::size_t hidden_chunk_capacity() const;
  /// Payload bytes store_hidden() could accept right now: per-chunk
  /// capacity times the blocks currently eligible to carry a chunk.
  [[nodiscard]] std::size_t hidden_capacity_bytes() const;
  [[nodiscard]] const StegoStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ftl::FtlStats ftl_stats_snapshot() const noexcept {
    return ftl_.stats_snapshot();
  }
  /// The public FTL beneath this volume (batch reads, GC, locate).
  [[nodiscard]] ftl::PageMappedFtl& ftl() noexcept { return ftl_; }
  [[nodiscard]] const std::set<std::uint32_t>& hidden_blocks() const noexcept {
    return hidden_blocks_;
  }

  // ---- Persistence (stash::store) ----------------------------------------
  /// Canonical serialization of the hidden-volume framing: the
  /// hidden-block set, rescued chunks awaiting a new home, and the rescue
  /// statistics.  The hidden *payload* itself lives in the chip voltages
  /// (saved with the chip); this is the bookkeeping that locates it.
  void serialize_state(std::vector<std::uint8_t>& out) const;
  /// Restore the framing from a serialize_state record.  kCorrupted on
  /// malformed input; the volume is unchanged on failure.
  Status deserialize_state(std::span<const std::uint8_t> bytes);

 private:
  struct Chunk {
    std::uint16_t index = 0;
    std::uint16_t total = 0;
    std::vector<std::uint8_t> data;
  };

  static constexpr std::size_t kChunkHeaderBytes = 4;

  [[nodiscard]] std::vector<std::uint8_t> pack_chunk(const Chunk& chunk) const;
  [[nodiscard]] static std::optional<Chunk> unpack_chunk(
      std::span<const std::uint8_t> payload);

  /// Blocks whose hidden pages are all programmed with public data and that
  /// do not already carry a hidden chunk.
  [[nodiscard]] std::vector<std::uint32_t> eligible_blocks() const;
  [[nodiscard]] bool block_fully_programmed(std::uint32_t block) const;

  void on_relocation(nand::PageAddr from);

  /// Embed `chunk` into `block` and read it back through the full reveal
  /// path.  Only a verified embedding claims the block; a failed one marks
  /// the carrier bad for this chunk and the caller tries elsewhere.
  bool embed_verified(std::uint32_t block, const Chunk& chunk);

  /// Best-effort release of a superseded carrier: overwrite the embedding
  /// with a tombstone frame whose chunk header is invalid.  Partial
  /// programming only raises voltages, so the overwrite scrambles the old
  /// codewords; whether the tombstone itself survives reveal or not, the
  /// block no longer yields a valid chunk to a key-only scan.
  void scrub_block(std::uint32_t block);

  nand::FlashChip* chip_;
  ftl::PageMappedFtl ftl_;
  vthi::VthiCodec codec_;
  std::set<std::uint32_t> hidden_blocks_;
  std::vector<Chunk> pending_;  // rescued, waiting for a new home
  StegoStats stats_;
};

}  // namespace stash::stego
