#include "stash/stego/volume.hpp"

#include <algorithm>
#include <array>

#include "stash/telemetry/metrics.hpp"
#include "stash/util/wire.hpp"

namespace stash::stego {

using util::ErrorCode;

namespace {

struct StegoTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& hides = reg.counter("stego.store_hidden");
  telemetry::Counter& loads = reg.counter("stego.load_hidden");
  telemetry::Counter& rescues = reg.counter("stego.rescues");
  telemetry::Counter& reembeds = reg.counter("stego.reembeds");
  telemetry::Counter& lost_chunks = reg.counter("stego.lost_chunks");
  telemetry::Counter& failed_embeds = reg.counter("stego.failed_embeds");
};

StegoTelemetry& stego_telemetry() {
  static StegoTelemetry t;
  return t;
}

}  // namespace

StegoVolume::StegoVolume(nand::FlashChip& chip, const crypto::HidingKey& key,
                         StegoConfig config)
    : chip_(&chip), ftl_(chip, config.ftl), codec_(chip, key, config.vthi) {
  if (const Status valid = config.validate(); !valid.is_ok()) {
    throw std::invalid_argument(valid.to_string());
  }
  // Rescue on the pre-erase hook: it fires exactly once per victim block,
  // before any cell is touched — even for blocks whose public pages are all
  // invalid (a relocation hook alone would miss those and the erase would
  // silently destroy the hidden chunk).
  ftl_.set_pre_erase_hook(
      [this](std::uint32_t block) { on_relocation({block, 0}); });
}

Status StegoVolume::write_public(std::uint64_t lpn,
                                 std::span<const std::uint8_t> bits) {
  STASH_RETURN_IF_ERROR(ftl_.write(lpn, bits));
  // New public data may have created room to re-home rescued chunks.
  return reembed_pending();
}

Result<std::vector<std::uint8_t>> StegoVolume::read_public(std::uint64_t lpn) {
  return ftl_.read(lpn);
}

std::size_t StegoVolume::hidden_chunk_capacity() const {
  const std::size_t block_capacity = codec_.capacity_bytes();
  return block_capacity > kChunkHeaderBytes ? block_capacity - kChunkHeaderBytes
                                            : 0;
}

std::size_t StegoVolume::hidden_capacity_bytes() const {
  return hidden_chunk_capacity() * eligible_blocks().size();
}

std::vector<std::uint8_t> StegoVolume::pack_chunk(const Chunk& chunk) const {
  std::vector<std::uint8_t> out;
  out.reserve(kChunkHeaderBytes + chunk.data.size());
  out.push_back(static_cast<std::uint8_t>(chunk.index));
  out.push_back(static_cast<std::uint8_t>(chunk.index >> 8));
  out.push_back(static_cast<std::uint8_t>(chunk.total));
  out.push_back(static_cast<std::uint8_t>(chunk.total >> 8));
  out.insert(out.end(), chunk.data.begin(), chunk.data.end());
  return out;
}

std::optional<StegoVolume::Chunk> StegoVolume::unpack_chunk(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < kChunkHeaderBytes) return std::nullopt;
  Chunk chunk;
  chunk.index = static_cast<std::uint16_t>(payload[0] |
                                           (static_cast<unsigned>(payload[1]) << 8));
  chunk.total = static_cast<std::uint16_t>(payload[2] |
                                           (static_cast<unsigned>(payload[3]) << 8));
  if (chunk.total == 0 || chunk.index >= chunk.total) return std::nullopt;
  chunk.data.assign(payload.begin() + kChunkHeaderBytes, payload.end());
  return chunk;
}

bool StegoVolume::block_fully_programmed(std::uint32_t block) const {
  const auto& geom = chip_->geometry();
  for (std::uint32_t p = 0; p < geom.pages_per_block; ++p) {
    if (chip_->page_state(block, p) != nand::PageState::kProgrammed) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint32_t> StegoVolume::eligible_blocks() const {
  std::vector<std::uint32_t> blocks;
  for (std::uint32_t b = 0; b < chip_->geometry().blocks; ++b) {
    if (hidden_blocks_.count(b)) continue;
    if (block_fully_programmed(b)) blocks.push_back(b);
  }
  return blocks;
}

Status StegoVolume::store_hidden(std::span<const std::uint8_t> data) {
  auto txn = prepare_store_hidden(data);
  STASH_RETURN_IF_ERROR(txn.status());
  return commit_store_hidden(txn.value());
}

Result<StegoVolume::HiddenTxn> StegoVolume::prepare_store_hidden(
    std::span<const std::uint8_t> data) {
  stego_telemetry().hides.inc();
  const std::size_t per_chunk = hidden_chunk_capacity();
  if (per_chunk == 0) {
    return Status{ErrorCode::kNoSpace, "hidden chunk capacity is zero"};
  }
  const std::size_t chunks =
      std::max<std::size_t>(1, (data.size() + per_chunk - 1) / per_chunk);
  if (chunks > 0xffff) {
    return Status{ErrorCode::kNoSpace, "hidden payload needs too many chunks"};
  }

  // eligible_blocks excludes every tracked carrier, so the new generation
  // lands beside the old one: until commit the previous payload is still
  // fully loadable, and a failure here costs nothing but scrubbed spares.
  const auto targets = eligible_blocks();
  if (targets.size() < chunks) {
    return Status{ErrorCode::kNoSpace,
                  "not enough public-data blocks to carry the hidden payload"};
  }

  HiddenTxn txn;
  txn.old_blocks = hidden_blocks_;
  std::size_t next_target = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    Chunk chunk;
    chunk.index = static_cast<std::uint16_t>(i);
    chunk.total = static_cast<std::uint16_t>(chunks);
    const std::size_t begin = i * per_chunk;
    const std::size_t end = std::min(data.size(), begin + per_chunk);
    if (begin < end) {
      chunk.data.assign(data.begin() + static_cast<long>(begin),
                        data.begin() + static_cast<long>(end));
    }
    bool embedded = false;
    while (next_target < targets.size()) {
      const std::uint32_t block = targets[next_target++];
      if (embed_verified(block, chunk)) {
        txn.new_blocks.push_back(block);
        embedded = true;
        break;
      }
    }
    if (!embedded) {
      for (const std::uint32_t b : txn.new_blocks) {
        hidden_blocks_.erase(b);
        scrub_block(b);
      }
      return Status{ErrorCode::kNoSpace,
                    "no carrier block held a verified hidden embedding"};
    }
  }
  txn.active = true;
  return txn;
}

Status StegoVolume::commit_store_hidden(HiddenTxn& txn) {
  if (!txn.active) {
    return {ErrorCode::kInvalidArgument, "hidden txn is not active"};
  }
  txn.active = false;
  for (const std::uint32_t b : txn.old_blocks) {
    hidden_blocks_.erase(b);
    scrub_block(b);
  }
  // The replacement supersedes any chunks rescued out of the old payload.
  pending_.clear();
  return Status::ok();
}

Status StegoVolume::abort_store_hidden(HiddenTxn& txn) {
  if (!txn.active) {
    return {ErrorCode::kInvalidArgument, "hidden txn is not active"};
  }
  txn.active = false;
  for (const std::uint32_t b : txn.new_blocks) {
    hidden_blocks_.erase(b);
    scrub_block(b);
  }
  return Status::ok();
}

Status StegoVolume::discard_hidden() {
  // Locate the carriers with a key-only scan when nothing is tracked (the
  // same discovery path load_hidden's scanning mode uses).
  if (hidden_blocks_.empty()) (void)load_hidden();
  for (const std::uint32_t b : hidden_blocks_) scrub_block(b);
  hidden_blocks_.clear();
  pending_.clear();
  return Status::ok();
}

void StegoVolume::scrub_block(std::uint32_t block) {
  // A MAC-valid frame whose chunk header can never parse: total == 0 is
  // rejected by unpack_chunk, so a scanning mount skips the block instead
  // of resurrecting the superseded chunk.
  const std::array<std::uint8_t, kChunkHeaderBytes> tombstone = {0xff, 0xff,
                                                                 0x00, 0x00};
  (void)codec_.hide(block, tombstone);
}

Result<std::vector<std::uint8_t>> StegoVolume::load_hidden() {
  stego_telemetry().loads.inc();
  // Key-only mount: reveal every candidate block; the MAC rejects blocks
  // without (our) hidden data.  When this instance already tracks hidden
  // blocks, restrict to those; otherwise scan everything fully programmed.
  const bool scanning = hidden_blocks_.empty();
  std::vector<Chunk> found;
  std::vector<std::uint32_t> discovered;
  for (std::uint32_t b = 0; b < chip_->geometry().blocks; ++b) {
    if (!scanning && !hidden_blocks_.count(b)) continue;
    if (scanning && !block_fully_programmed(b)) continue;
    auto revealed = codec_.reveal(b);
    if (!revealed.is_ok()) continue;
    if (auto chunk = unpack_chunk(revealed.value())) {
      found.push_back(std::move(*chunk));
      if (scanning) discovered.push_back(b);
    }
  }
  hidden_blocks_.insert(discovered.begin(), discovered.end());
  // Chunks rescued from a GC victim but not yet re-homed live in pending_;
  // they are part of the volume and must survive a load (and a snapshot
  // restore) taken before the next write re-embeds them.
  for (const Chunk& chunk : pending_) found.push_back(chunk);
  if (found.empty()) {
    return Status{ErrorCode::kNotFound, "no hidden volume under this key"};
  }

  const std::uint16_t total = found.front().total;
  std::vector<const Chunk*> ordered(total, nullptr);
  for (const auto& chunk : found) {
    if (chunk.total != total || chunk.index >= total) {
      return Status{ErrorCode::kCorrupted, "inconsistent hidden chunk set"};
    }
    if (ordered[chunk.index] != nullptr) {
      // Two carriers claiming one index means generations got mixed;
      // splicing whichever block scanned last would be silent corruption.
      return Status{ErrorCode::kCorrupted,
                    "duplicate hidden chunk " + std::to_string(chunk.index)};
    }
    ordered[chunk.index] = &chunk;
  }
  std::vector<std::uint8_t> out;
  for (std::uint16_t i = 0; i < total; ++i) {
    if (!ordered[i]) {
      return Status{ErrorCode::kCorrupted,
                    "hidden chunk " + std::to_string(i) + " missing"};
    }
    out.insert(out.end(), ordered[i]->data.begin(), ordered[i]->data.end());
  }
  return out;
}

Status StegoVolume::panic_erase() {
  for (std::uint32_t b : hidden_blocks_) {
    STASH_RETURN_IF_ERROR(chip_->erase_block(b));
  }
  hidden_blocks_.clear();
  pending_.clear();
  return Status::ok();
}

void StegoVolume::on_relocation(nand::PageAddr from) {
  // First relocation out of a hidden block: the victim's cells are still
  // intact (erase happens after all pages move), so rescue the chunk now.
  if (!hidden_blocks_.count(from.block)) return;
  hidden_blocks_.erase(from.block);
  auto revealed = codec_.reveal(from.block);
  if (!revealed.is_ok()) {
    ++stats_.lost_chunks;
    stego_telemetry().lost_chunks.inc();
    return;
  }
  if (auto chunk = unpack_chunk(revealed.value())) {
    pending_.push_back(std::move(*chunk));
    ++stats_.rescues;
    stego_telemetry().rescues.inc();
  } else {
    ++stats_.lost_chunks;
    stego_telemetry().lost_chunks.inc();
  }
}

bool StegoVolume::embed_verified(std::uint32_t block, const Chunk& chunk) {
  const auto packed = pack_chunk(chunk);
  auto hidden = codec_.hide(block, packed);
  // A worn carrier can absorb every partial-program step and still come
  // back unreadable — and by the next GC pass the chunk would be gone for
  // good.  Read the embedding back through the full reveal path before
  // counting on it; an unverified carrier is simply skipped.
  if (hidden.is_ok()) {
    auto readback = codec_.reveal(block);
    if (readback.is_ok() && readback.value() == packed) {
      hidden_blocks_.insert(block);
      return true;
    }
  }
  ++stats_.failed_embeds;
  stego_telemetry().failed_embeds.inc();
  return false;
}

Status StegoVolume::reembed_pending() {
  if (pending_.empty()) return Status::ok();
  auto targets = eligible_blocks();
  std::size_t used = 0;
  while (!pending_.empty() && used < targets.size()) {
    if (embed_verified(targets[used], pending_.back())) {
      pending_.pop_back();
      ++stats_.reembeds;
      stego_telemetry().reembeds.inc();
    }
    ++used;
  }
  return Status::ok();
}

// ---- Persistence -----------------------------------------------------------

void StegoVolume::serialize_state(std::vector<std::uint8_t>& out) const {
  util::ByteWriter w(out);
  // std::set iterates in key order: the emission is canonical for free.
  w.u64(hidden_blocks_.size());
  for (const std::uint32_t b : hidden_blocks_) w.u32(b);
  w.u64(pending_.size());
  for (const Chunk& chunk : pending_) {
    w.u16(chunk.index);
    w.u16(chunk.total);
    w.blob(chunk.data);
  }
  w.u64(stats_.rescues);
  w.u64(stats_.reembeds);
  w.u64(stats_.lost_chunks);
  w.u64(stats_.failed_embeds);
}

Status StegoVolume::deserialize_state(std::span<const std::uint8_t> bytes) {
  using util::ErrorCode;
  const std::uint32_t device_blocks = chip_->geometry().blocks;

  util::ByteReader r(bytes);
  std::uint64_t block_count = 0;
  STASH_RETURN_IF_ERROR(r.u64(block_count));
  if (block_count > device_blocks) {
    return {ErrorCode::kCorrupted, "hidden-block set larger than device"};
  }
  std::set<std::uint32_t> blocks;
  std::uint32_t prev = 0;
  for (std::uint64_t i = 0; i < block_count; ++i) {
    std::uint32_t b = 0;
    STASH_RETURN_IF_ERROR(r.u32(b));
    if (b >= device_blocks || (i > 0 && b <= prev)) {
      return {ErrorCode::kCorrupted, "hidden blocks out of order or range"};
    }
    prev = b;
    blocks.insert(blocks.end(), b);
  }
  std::uint64_t pending_count = 0;
  STASH_RETURN_IF_ERROR(r.u64(pending_count));
  if (pending_count > 0xFFFF) {
    return {ErrorCode::kCorrupted, "pending chunk count implausible"};
  }
  std::vector<Chunk> pending(pending_count);
  for (Chunk& chunk : pending) {
    STASH_RETURN_IF_ERROR(r.u16(chunk.index));
    STASH_RETURN_IF_ERROR(r.u16(chunk.total));
    if (chunk.total == 0 || chunk.index >= chunk.total) {
      return {ErrorCode::kCorrupted, "pending chunk header invalid"};
    }
    STASH_RETURN_IF_ERROR(r.blob(chunk.data));
  }
  StegoStats stats;
  STASH_RETURN_IF_ERROR(r.u64(stats.rescues));
  STASH_RETURN_IF_ERROR(r.u64(stats.reembeds));
  STASH_RETURN_IF_ERROR(r.u64(stats.lost_chunks));
  STASH_RETURN_IF_ERROR(r.u64(stats.failed_embeds));
  STASH_RETURN_IF_ERROR(r.expect_exhausted());

  hidden_blocks_ = std::move(blocks);
  pending_ = std::move(pending);
  stats_ = stats;
  return Status::ok();
}

}  // namespace stash::stego
