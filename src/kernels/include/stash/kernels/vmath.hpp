#pragma once
// Vector-friendly deterministic math for the voltage-domain kernels.
//
// libm's log/cos/exp are scalar calls the auto-vectorizer cannot touch (and
// their last-ulp behaviour varies across libm versions, which would make
// golden values machine-dependent).  These replacements are pure IEEE
// arithmetic — add/mul/div/sqrt plus integer bit manipulation — so they
// (a) vectorize, and (b) produce bit-identical results on any conforming
// platform, at any SIMD width, from any thread.  Accuracy is ~1e-10
// absolute or better over the domains the kernels use, far inside the
// noise-model's distributional tolerances (see tests/kernels_test.cpp's
// KS batteries).
//
// Kernel translation units are compiled with -ffp-contract=off so no FMA
// contraction can make the vectorized body differ from the scalar tail or
// the reference build.

#include <bit>
#include <cmath>
#include <cstdint>

namespace stash::kernels {

/// Branchless min/max.  std::fmin/fmax lower to libm calls on x86 (their
/// NaN-propagation rules don't match minsd/maxsd), and a libm call inside a
/// batch loop blocks vectorization outright.  Kernel inputs are NaN-free by
/// construction, so plain compare-select semantics are identical here — and
/// they compile to single min/max instructions in both scalar and vector
/// form.
[[nodiscard]] constexpr double vmin(double a, double b) noexcept {
  return a < b ? a : b;
}
[[nodiscard]] constexpr double vmax(double a, double b) noexcept {
  return a > b ? a : b;
}

/// Natural log for finite x > 0 (normals only; inputs here are >= 2^-53).
/// Decomposes x = m * 2^e with m in [1/sqrt2, sqrt2), then 2*atanh series.
[[nodiscard]] inline double vlog(double x) noexcept {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  double e =
      static_cast<double>(static_cast<int>((bits >> 52) & 0x7ff) - 1023);
  double m = std::bit_cast<double>(
      (bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);  // [1, 2)
  // Fold [sqrt2, 2) down so the series argument stays small.  The compare
  // is written inline at each select (not hoisted into a bool) because a
  // 1-byte condition against 8-byte data defeats GCC's if-conversion.
  m = m > 1.4142135623730951 ? 0.5 * m : m;
  e = m < 1.0 ? e + 1.0 : e;  // folded iff m dropped below 1

  const double t = (m - 1.0) / (m + 1.0);  // |t| <= 0.1716
  const double t2 = t * t;
  // 2*atanh(t) = t*(2 + t2*(2/3 + t2*(2/5 + ...))), truncation < 5e-13.
  double s = 2.0 / 13.0;
  s = s * t2 + 2.0 / 11.0;
  s = s * t2 + 2.0 / 9.0;
  s = s * t2 + 2.0 / 7.0;
  s = s * t2 + 2.0 / 5.0;
  s = s * t2 + 2.0 / 3.0;
  s = s * t2 + 2.0;
  const double log_m = t * s;
  // ln2 split keeps e*ln2 exact to the last bit that matters here.
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  return e * kLn2Hi + (log_m + e * kLn2Lo);
}

/// cos(2*pi*u) for u in [0, 2).  Quadrant reduction + short minimax-grade
/// Taylor polynomials on [-pi/4, pi/4].
[[nodiscard]] inline double vcos2pi(double u) noexcept {
  const double a = 4.0 * u;                       // [0, 4)
  const int k = static_cast<int>(a + 0.5);        // nearest quadrant, [0, 4]
  const double f = a - static_cast<double>(k);    // [-0.5, 0.5]
  const double th = f * 1.5707963267948966;       // [-pi/4, pi/4]
  const double th2 = th * th;

  double c = 1.0 / 3628800.0;
  c = 1.0 / 40320.0 - c * th2;
  c = 1.0 / 720.0 - c * th2;
  c = 1.0 / 24.0 - c * th2;
  c = 0.5 - c * th2;
  c = 1.0 - c * th2;

  double s = 1.0 / 362880.0;
  s = 1.0 / 5040.0 - s * th2;
  s = 1.0 / 120.0 - s * th2;
  s = 1.0 / 6.0 - s * th2;
  s = 1.0 - s * th2;
  s = s * th;

  // Quadrant select and sign flip in arithmetic form: GCC's if-converter
  // rejects selects whose condition is a narrow integer against double
  // data, which would de-vectorize every caller.  Multiplying by an exact
  // 0.0/1.0 (resp. ±1.0) is bit-identical to the select.
  // (s*odd + c*(1-odd) is an exact select for odd in {0,1}: one side is
  // multiplied by exactly 1.0, the other collapses to a signless-safe +0.)
  const double odd = static_cast<double>(k & 1);        // exactly 0 or 1
  const double sgn = 1.0 - static_cast<double>((k + 1) & 2);  // exactly ±1
  return (s * odd + c * (1.0 - odd)) * sgn;
}

/// sin(2*pi*u) for u in [0, 1), via cos(2*pi*(u + 3/4)).  The 3/4 shift is
/// exact for any u with <= 51 fractional bits (the draws' 32-bit uniforms
/// qualify), and vcos2pi's quadrant reduction handles the shifted phase.
[[nodiscard]] inline double vsin2pi(double u) noexcept {
  return vcos2pi(u + 0.75);
}

/// exp(x) for |x| <= ~700.  Standard 2^k * exp(r) split, degree-10 series.
[[nodiscard]] inline double vexp(double x) noexcept {
  constexpr double kInvLn2 = 1.4426950408889634;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const double kd = x * kInvLn2;
  const int k = static_cast<int>(kd >= 0.0 ? kd + 0.5 : kd - 0.5);
  const double kdd = static_cast<double>(k);
  const double r = (x - kdd * kLn2Hi) - kdd * kLn2Lo;  // [-0.347, 0.347]

  double p = 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;

  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
  return p * scale;
}

}  // namespace stash::kernels
