#pragma once
// Per-cell draw compositions on top of the Philox counter RNG.
//
// Everything here is a pure function of (key, cell, sub), inline so the
// batch kernels, the scalar reference build, and FlashChip's sparse paths
// (cell lists, read-disturb events) share one definition — which is what
// makes "vectorized == scalar" a bit-exactness statement rather than a
// distributional one.

#include <cmath>

#include "stash/kernels/philox.hpp"
#include "stash/kernels/vmath.hpp"

namespace stash::kernels {

/// Standard normal from one 128-bit draw (branch-free Box-Muller; the
/// cosine branch only, so one draw yields one deviate).
[[nodiscard]] inline double normal01_of(
    const std::array<std::uint32_t, 4>& r) noexcept {
  const double u1 = 1.0 - u53(r[0], r[1]);  // (0, 1]
  const double u2 = u53(r[2], r[3]);        // [0, 1)
  const double m2l = -2.0 * vlog(u1);
  // vlog(1.0) is exactly 0, but guard the sqrt against a last-ulp positive.
  return std::sqrt(m2l < 0.0 ? 0.0 : m2l) * vcos2pi(u2);
}

[[nodiscard]] inline double normal_at(DrawKey key, std::uint32_t cell,
                                      std::uint32_t sub, double mu,
                                      double sigma) noexcept {
  return mu + sigma * normal01_of(draw128(key, cell, sub));
}

[[nodiscard]] inline double uniform_at(DrawKey key, std::uint32_t cell,
                                       std::uint32_t sub) noexcept {
  const auto r = draw128(key, cell, sub);
  return u53(r[0], r[1]);
}

/// Exponential of the given mean, drawn from lanes 2/3 so it can share a
/// (cell, sub) draw with a lane-0/1 bernoulli.
[[nodiscard]] inline double exponential_at(DrawKey key, std::uint32_t cell,
                                           std::uint32_t sub,
                                           double mean) noexcept {
  const auto r = draw128(key, cell, sub);
  return -mean * vlog(1.0 - u53(r[2], r[3]));
}

[[nodiscard]] inline std::uint64_t u64_at(DrawKey key, std::uint32_t cell,
                                          std::uint32_t sub) noexcept {
  const auto r = draw128(key, cell, sub);
  return u64_of(r[0], r[1]);
}

// ---- Stateless manufacturing-trait hashes ----------------------------------
// Bit-compatible with the trait derivations FlashChip has always used
// (traits are permanent physical identity and survive the noise-model
// version bump; only ephemeral noise moved onto the counter RNG).

/// Standard-normal deviate from a hash: sum of four uniforms, variance
/// corrected.  Cheap, bounded, plenty for trait generation.
[[nodiscard]] inline double hash_normal(std::uint64_t h) noexcept {
  // Four splitmix64 steps, written straight-line: an inner `for` here would
  // show up as control flow in the leak kernel's batch loop and block
  // vectorization.
  const std::uint64_t h1 = util::splitmix64(h);
  const std::uint64_t h2 = util::splitmix64(h1);
  const std::uint64_t h3 = util::splitmix64(h2);
  const std::uint64_t h4 = util::splitmix64(h3);
  double s = static_cast<double>(h1 >> 11) * 0x1.0p-53;
  s += static_cast<double>(h2 >> 11) * 0x1.0p-53;
  s += static_cast<double>(h3 >> 11) * 0x1.0p-53;
  s += static_cast<double>(h4 >> 11) * 0x1.0p-53;
  // Sum of 4 U(0,1): mean 2, variance 4/12.
  return (s - 2.0) / std::sqrt(4.0 / 12.0);
}

[[nodiscard]] inline double hash_uniform(std::uint64_t h) noexcept {
  return static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
}

}  // namespace stash::kernels
