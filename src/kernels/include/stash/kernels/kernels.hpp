#pragma once
// stash::kernels — SIMD-friendly batch kernels for the voltage-domain hot
// loops (ISSUE 5 tentpole).
//
// Each kernel operates on a contiguous SoA voltage row (one float per
// cell) and draws its noise from the counter-based per-cell RNG
// (philox.hpp), so results are independent of evaluation order: calling a
// kernel on [0, n) equals calling it on any partition [0, k) + [k, n) with
// cell0 offsets, from any number of threads, at any SIMD width —
// bit-identically.  That contract is what lets stash::par scale intra-page
// on top of the existing per-block sharding, and it is regression-tested
// by tests/kernels_test.cpp (chunked-vs-whole, 1-vs-8-thread, and
// vectorized-vs-scalar-reference batteries).
//
// The implementations live in kernels.cpp, compiled -O3 with forced SIMD;
// reference.cpp compiles the same per-cell functions with vectorization
// disabled.  Both use -ffp-contract=off, so the two builds are bit-equal.

#include <cstdint>

#include "stash/kernels/philox.hpp"

namespace stash::kernels {

// Draw economy: the normal-drawing kernels consume one 128-bit Philox draw
// per GROUP of cells.  A Box-Muller evaluation of two 32-bit uniform lanes
// yields a cosine-half deviate for one cell and a sine-half deviate for the
// next; erased_fill keeps lanes 2/3 for per-cell tail uniforms (group = a
// pair of cells), while normal_row/disturb_row spend all four lanes on
// deviates (group = a quad).  Cell c still gets a pure function of
// (key, c); chunk boundaries that split a group just recompute the shared
// draw on both sides.

/// Erased-state redraw: v = clamp(N(mu, sigma) + Bern(tail_prob)*Exp(tail_mean),
/// 0, cap) per cell.
struct ErasedParams {
  double mu = 0.0;
  double sigma = 1.0;
  double tail_prob = 0.0;
  double tail_mean = 1.0;
  double cap = 80.0;
};
void erased_fill(DrawKey key, const ErasedParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept;

/// Programming-noise targets: out[i] = N(mu, sigma) for cell0 + i.  The
/// caller masks by data bits / weak-cell traits and applies ISPP semantics.
void normal_row(DrawKey key, double mu, double sigma, double* out,
                std::uint32_t cell0, std::uint32_t n) noexcept;

/// ISPP apply: for data-'0' cells, move v toward clamp(max(v, target)) by
/// `frac` (interrupted programs deposit partial charge).  bits==1 cells are
/// left erased.
void program_apply(float* row, const double* targets,
                   const std::uint8_t* bits, std::uint32_t n, double frac,
                   double vmax) noexcept;

/// Program-disturb on a neighbouring wordline: erased-level cells
/// (v < guard) gain max(0, N(mu, sigma)); cells at or above guard are left
/// untouched.  The rare pass-voltage de-trap on programmed cells is not a
/// dense kernel — FlashChip samples it as sparse events (expected-count
/// scheme, like read disturb) on disjoint sub-streams of the same key.
struct DisturbParams {
  double mu = 0.0;
  double sigma = 1.0;
  double guard = 90.0;
  double vmax = 255.0;
};
void disturb_row(DrawKey key, const DisturbParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept;

/// Retention leak: v -= base * sqrt(max(0, v - floor)) * leak_factor(cell),
/// where leak_factor = exp(sigma_ln * hash_normal(seed, block, page, cell))
/// is the permanent per-cell trait (no epoch: retention draws no fresh
/// randomness, matching the v1 model).
void leak_row(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
              double base, double floor_v, double sigma_ln, float* row,
              std::uint32_t cell0, std::uint32_t n) noexcept;

/// Weak-cell trait mask (bit-compatible with FlashChip::cell_is_weak):
/// mask[i] = 1 iff hash_uniform(seed, block, page, cell0+i) < prob.
void weak_mask(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
               double prob, std::uint8_t* mask, std::uint32_t cell0,
               std::uint32_t n) noexcept;

/// Probe quantization: out[i] = lround(row[i]) for the tester's discrete
/// normalized units (rows are non-negative).
void quantize_row(const float* row, int* out, std::uint32_t n) noexcept;

/// Hard-read threshold: out[i] = row[i] < vref ? 1 : 0.
void threshold_row(const float* row, double vref, std::uint8_t* out,
                   std::uint32_t n) noexcept;

}  // namespace stash::kernels

namespace stash::kernels::reference {
// Scalar twins compiled with vectorization disabled (reference.cpp); the
// kernels_test bit-exactness battery compares these against the -O3 SIMD
// build above.
void erased_fill(DrawKey key, const ErasedParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept;
void normal_row(DrawKey key, double mu, double sigma, double* out,
                std::uint32_t cell0, std::uint32_t n) noexcept;
void disturb_row(DrawKey key, const DisturbParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept;
void leak_row(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
              double base, double floor_v, double sigma_ln, float* row,
              std::uint32_t cell0, std::uint32_t n) noexcept;
}  // namespace stash::kernels::reference
