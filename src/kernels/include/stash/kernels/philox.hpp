#pragma once
// Philox4x32-10: the counter-based per-cell RNG under stash::kernels.
//
// Every voltage-domain noise draw in the simulator is a pure function of
//   (chip seed, op kind, block, page, op epoch)  ->  Philox key
//   (cell index, sub-draw index)                 ->  Philox counter
// so draws are order-independent within an operation: any partition of a
// page across threads or SIMD lanes produces byte-identical voltages.  This
// is what replaced the sequential per-block xoshiro stream (noise-model v1),
// whose draw order serialized the innermost per-cell loops.
//
// Philox4x32-10 is the counter-based generator of Salmon et al. (SC'11,
// "Parallel random numbers: as easy as 1, 2, 3"); it passes BigCrush and
// needs only 32x32->64 multiplies and XORs, which auto-vectorize.

#include <array>
#include <cstdint>

#include "stash/util/rng.hpp"

namespace stash::kernels {

/// Physical operation kinds; each gets its own key domain so the per-cell
/// counter streams of different ops never collide.
enum class Op : std::uint32_t {
  kErasedFill = 1,
  kProgramTarget = 2,
  kDisturb = 3,
  kReadDisturb = 4,
  kPartialStep = 5,
  kFineTarget = 6,
};

/// 64-bit Philox key, derived once per (op, page) and shared by every cell.
struct DrawKey {
  std::uint32_t k0 = 0;
  std::uint32_t k1 = 0;
};

/// Key derivation: hash the full op coordinate through splitmix64.
[[nodiscard]] constexpr DrawKey derive_key(std::uint64_t seed, Op op,
                                           std::uint32_t block,
                                           std::uint32_t page,
                                           std::uint64_t epoch) noexcept {
  const std::uint64_t h =
      util::hash_words(seed, static_cast<std::uint64_t>(op), block, page,
                       epoch);
  return {static_cast<std::uint32_t>(h),
          static_cast<std::uint32_t>(h >> 32)};
}

namespace detail {
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;
}  // namespace detail

namespace detail {
/// One Philox round.  Kept as a separate always-inline step and invoked ten
/// times straight-line in draw128: an inner `for` would survive into the
/// vectorizer as real control flow and block if-conversion of the batch
/// loops ("not vectorized: control flow in loop").
struct PhiloxState {
  std::uint32_t c0, c1, c2, c3, k0, k1;
};

[[nodiscard]] constexpr PhiloxState philox_round(PhiloxState s) noexcept {
  const std::uint64_t p0 = static_cast<std::uint64_t>(kPhiloxM0) * s.c0;
  const std::uint64_t p1 = static_cast<std::uint64_t>(kPhiloxM1) * s.c2;
  return {static_cast<std::uint32_t>(p1 >> 32) ^ s.c1 ^ s.k0,
          static_cast<std::uint32_t>(p1),
          static_cast<std::uint32_t>(p0 >> 32) ^ s.c3 ^ s.k1,
          static_cast<std::uint32_t>(p0),
          s.k0 + kPhiloxW0,
          s.k1 + kPhiloxW1};
}
}  // namespace detail

/// One 128-bit Philox4x32-10 block for counter (cell, sub).  Pure function;
/// safe to evaluate from any thread or lane.
[[nodiscard]] constexpr std::array<std::uint32_t, 4> draw128(
    DrawKey key, std::uint32_t cell, std::uint32_t sub) noexcept {
  // Domain constant 0x5741 ("WA"): stash voltage draws.
  detail::PhiloxState s{cell, sub, 0x5741u, 0, key.k0, key.k1};
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  s = detail::philox_round(s);
  return {s.c0, s.c1, s.c2, s.c3};
}

/// 53-bit uniform in [0, 1) from two 32-bit lanes.
[[nodiscard]] constexpr double u53(std::uint32_t hi, std::uint32_t lo) noexcept {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(hi) << 32) | lo;
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Full 64-bit word from two lanes (bounded-integer derivation).
[[nodiscard]] constexpr std::uint64_t u64_of(std::uint32_t hi,
                                             std::uint32_t lo) noexcept {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Bias-free-enough bounded integer: multiply-shift (bias < 2^-64 * n).
[[nodiscard]] constexpr std::uint64_t bounded(std::uint64_t word,
                                              std::uint64_t n) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(word) * n) >> 64);
}

}  // namespace stash::kernels
