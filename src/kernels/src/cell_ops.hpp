#pragma once
// Private per-cell op bodies shared verbatim by the SIMD build (kernels.cpp)
// and the scalar reference build (reference.cpp).  One definition, two
// translation units, both -ffp-contract=off: bit-equal by construction.
//
// The normal-drawing ops batch cells per 128-bit draw: one Box-Muller
// evaluation turns two 32-bit uniform lanes into a cosine-half deviate for
// one cell and a sine-half deviate for the next.  erased_fill needs lanes
// 2/3 for per-cell tail uniforms, so it covers a PAIR of cells per draw;
// normal_row and disturb_row need nothing else, so all four lanes carry
// Box-Muller inputs and one draw covers a QUAD.  That cuts the Philox work
// (the dominant cost of the v1 one-draw-per-cell scheme) by 2-4x while
// cell c's value stays a pure function of (key, c).

#include <cmath>

#include "stash/kernels/draws.hpp"
#include "stash/kernels/kernels.hpp"

namespace stash::kernels::detail {

/// Two independent standard normals from two 32-bit uniform words: shared
/// radius, cos/sin phases.
struct ZPair {
  double z0, z1;
};

[[nodiscard]] inline ZPair zpair_from(std::uint32_t w0,
                                      std::uint32_t w1) noexcept {
  const double u1 = (static_cast<double>(w0) + 1.0) * 0x1.0p-32;  // (0, 1]
  const double u2 = static_cast<double>(w1) * 0x1.0p-32;          // [0, 1)
  const double m2l = -2.0 * vlog(u1);
  // vlog(1.0) is exactly 0, but guard the sqrt against a last-ulp positive.
  const double rad = std::sqrt(m2l < 0.0 ? 0.0 : m2l);
  return {rad * vcos2pi(u2), rad * vsin2pi(u2)};
}

[[nodiscard]] inline ZPair zpair_of(
    const std::array<std::uint32_t, 4>& r) noexcept {
  return zpair_from(r[0], r[1]);
}

// ---- Erased-state fill ------------------------------------------------------

/// One cell of erased fill given its deviate and its 32-bit tail word.
/// inv_tail_prob is 1/p.tail_prob, hoisted by the caller.  The tail word
/// doubles as bernoulli and magnitude: conditioned on ut < tail_prob,
/// ut/tail_prob is U(0, 1], so -tail_mean*log(ut/tail_prob) is the
/// exponential tail draw — one 32-bit lane, no second draw.
[[nodiscard]] inline float erased_from(const ErasedParams& p,
                                       double inv_tail_prob, double z,
                                       std::uint32_t tail_word) noexcept {
  double v = p.mu + p.sigma * z;
  const double ut = (static_cast<double>(tail_word) + 1.0) * 0x1.0p-32;
  const double tail = -p.tail_mean * vlog(ut * inv_tail_prob);
  v += (ut < p.tail_prob) ? tail : 0.0;
  return static_cast<float>(vmin(vmax(v, 0.0), p.cap));
}

inline void erased_pair(DrawKey key, const ErasedParams& p,
                        double inv_tail_prob, std::uint32_t pair, float& even,
                        float& odd) noexcept {
  const auto r = draw128(key, pair, 0);
  const ZPair z = zpair_of(r);
  even = erased_from(p, inv_tail_prob, z.z0, r[2]);
  odd = erased_from(p, inv_tail_prob, z.z1, r[3]);
}

/// Single-cell form (pair recomputed, one lane kept): the scalar reference
/// and the odd-boundary prologue/epilogue of the SIMD shell.
[[nodiscard]] inline float erased_cell(DrawKey key, const ErasedParams& p,
                                       double inv_tail_prob,
                                       std::uint32_t c) noexcept {
  const auto r = draw128(key, c >> 1, 0);
  const ZPair z = zpair_of(r);
  return (c & 1u) ? erased_from(p, inv_tail_prob, z.z1, r[3])
                  : erased_from(p, inv_tail_prob, z.z0, r[2]);
}

// ---- Programming-noise targets ----------------------------------------------
// No auxiliary uniforms needed, so all four lanes carry Box-Muller inputs:
// one draw -> two evaluations -> FOUR cells (a "quad"; cell c maps to
// draw128(key, c >> 2, sub), evaluation c & 2, lane c & 1).

inline void normal_quad(DrawKey key, double mu, double sigma,
                        std::uint32_t quad, double& c0, double& c1,
                        double& c2, double& c3) noexcept {
  const auto r = draw128(key, quad, 0);
  const ZPair a = zpair_from(r[0], r[1]);
  const ZPair b = zpair_from(r[2], r[3]);
  c0 = mu + sigma * a.z0;
  c1 = mu + sigma * a.z1;
  c2 = mu + sigma * b.z0;
  c3 = mu + sigma * b.z1;
}

[[nodiscard]] inline double normal_cell(DrawKey key, double mu, double sigma,
                                        std::uint32_t c) noexcept {
  const auto r = draw128(key, c >> 2, 0);
  const ZPair z =
      (c & 2u) ? zpair_from(r[2], r[3]) : zpair_from(r[0], r[1]);
  return mu + sigma * ((c & 1u) ? z.z1 : z.z0);
}

// ---- ISPP apply -------------------------------------------------------------

[[nodiscard]] inline float program_apply_cell(float v0, double target,
                                              std::uint8_t bit, double frac,
                                              double vmax) noexcept {
  // ISPP never lowers a cell; an interrupted program moves it only `frac`
  // of the way to target.  Data-'1' cells stay erased — expressed as an
  // arithmetic mask (multiply by an exact 0.0/1.0) rather than a select on
  // the loaded byte, which GCC's if-converter rejects and which would
  // de-vectorize the loop.  Exact: keep=1 adds a signless +-0 to v, keep=0
  // multiplies the step by exactly 1.0.
  const double v = static_cast<double>(v0);
  const double full =
      kernels::vmin(kernels::vmax(kernels::vmax(v, target), 0.0), vmax);
  const double keep = static_cast<double>(bit & 1);
  return static_cast<float>(v + (full - v) * frac * (1.0 - keep));
}

// ---- Program disturb --------------------------------------------------------

[[nodiscard]] inline float disturb_from(const DisturbParams& p, float v0,
                                        double z) noexcept {
  const double v = static_cast<double>(v0);
  const double inc = vmax(0.0, p.mu + p.sigma * z);
  const double up = vmin(vmax(v + inc, 0.0), p.vmax);
  // Compare in double so the select's condition and data widths match —
  // equivalent to the float compare (float->double is exact) and keeps the
  // loop if-convertible.
  return static_cast<float>(v < p.guard ? up : v);
}

// Same quad scheme as normal_quad: disturb needs only the deviate.
inline void disturb_quad(DrawKey key, const DisturbParams& p,
                         std::uint32_t quad, float& c0, float& c1, float& c2,
                         float& c3) noexcept {
  const auto r = draw128(key, quad, 0);
  const ZPair a = zpair_from(r[0], r[1]);
  const ZPair b = zpair_from(r[2], r[3]);
  c0 = disturb_from(p, c0, a.z0);
  c1 = disturb_from(p, c1, a.z1);
  c2 = disturb_from(p, c2, b.z0);
  c3 = disturb_from(p, c3, b.z1);
}

[[nodiscard]] inline float disturb_cell(DrawKey key, const DisturbParams& p,
                                        float v0, std::uint32_t c) noexcept {
  const auto r = draw128(key, c >> 2, 0);
  const ZPair z =
      (c & 2u) ? zpair_from(r[2], r[3]) : zpair_from(r[0], r[1]);
  return disturb_from(p, v0, (c & 1u) ? z.z1 : z.z0);
}

// ---- Retention leak ---------------------------------------------------------

[[nodiscard]] inline float leak_cell(std::uint64_t seed, std::uint32_t block,
                                     std::uint32_t page, double base,
                                     double floor_v, double sigma_ln,
                                     float v0, std::uint32_t c) noexcept {
  const double v = static_cast<double>(v0);
  const double headroom = vmax(0.0, v - floor_v);
  const double factor = vexp(
      sigma_ln *
      hash_normal(util::hash_words(seed, 0x1EA4ULL, block, page, c)));
  const double drop = base * std::sqrt(headroom) * factor;
  return static_cast<float>(vmax(0.0, v - drop));
}

[[nodiscard]] inline std::uint8_t weak_cell(std::uint64_t seed,
                                            std::uint32_t block,
                                            std::uint32_t page, double prob,
                                            std::uint32_t c) noexcept {
  return hash_uniform(util::hash_words(seed, 0x3EAFULL, block, page, c)) < prob
             ? std::uint8_t{1}
             : std::uint8_t{0};
}

[[nodiscard]] inline int quantize_cell(float v) noexcept {
  // Rows are non-negative, so round-half-away equals floor(v + 0.5); the
  // double add is exact for any float input.
  return static_cast<int>(static_cast<double>(v) + 0.5);
}

}  // namespace stash::kernels::detail
