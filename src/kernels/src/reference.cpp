// Scalar reference build of the voltage kernels: same per-cell bodies
// (cell_ops.hpp), vectorization disabled (see CMakeLists.txt).  The
// kernels_test bit-exactness battery diffs these against the SIMD build —
// any divergence means the SIMD build changed semantics, not just speed.
//
// Each loop uses the single-cell form of the paired bodies: the pair's
// shared draw is recomputed for every cell and one lane kept, which is
// arithmetic-for-arithmetic the lane the SIMD pair loop writes.

#include "stash/kernels/kernels.hpp"

#include "cell_ops.hpp"

namespace stash::kernels::reference {

void erased_fill(DrawKey key, const ErasedParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept {
  const double inv_tail_prob = 1.0 / p.tail_prob;
  for (std::uint32_t i = 0; i < n; ++i) {
    row[i] = detail::erased_cell(key, p, inv_tail_prob, cell0 + i);
  }
}

void normal_row(DrawKey key, double mu, double sigma, double* out,
                std::uint32_t cell0, std::uint32_t n) noexcept {
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = detail::normal_cell(key, mu, sigma, cell0 + i);
  }
}

void disturb_row(DrawKey key, const DisturbParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept {
  for (std::uint32_t i = 0; i < n; ++i) {
    row[i] = detail::disturb_cell(key, p, row[i], cell0 + i);
  }
}

void leak_row(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
              double base, double floor_v, double sigma_ln, float* row,
              std::uint32_t cell0, std::uint32_t n) noexcept {
  for (std::uint32_t i = 0; i < n; ++i) {
    row[i] = detail::leak_cell(seed, block, page, base, floor_v, sigma_ln,
                               row[i], cell0 + i);
  }
}

}  // namespace stash::kernels::reference
