// Batch voltage-domain kernels: the SIMD build.  This translation unit is
// compiled -O3 -fopenmp-simd -ffp-contract=off (see CMakeLists.txt); every
// loop body is a pure per-cell function from cell_ops.hpp, so forcing SIMD
// cannot change results — only throughput.
//
// The normal-drawing kernels iterate over cell PAIRS (erased_fill) or
// QUADS (normal_row, disturb_row) — one Philox draw per group; see
// cell_ops.hpp.  A chunk whose boundary splits a group is handled by
// scalar prologue/epilogue cells that recompute the shared draw and keep
// one lane — bit-identical to the grouped path, so the chunk-partition
// contract holds at any split point.

#include "stash/kernels/kernels.hpp"

#include "cell_ops.hpp"

namespace stash::kernels {

void erased_fill(DrawKey key, const ErasedParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept {
  const double inv_tail_prob = 1.0 / p.tail_prob;
  std::uint32_t c = cell0;
  const std::uint32_t end = cell0 + n;
  if (c < end && (c & 1u)) {
    row[0] = detail::erased_cell(key, p, inv_tail_prob, c);
    ++c;
  }
  const std::uint32_t pairs = (end - c) / 2;
  const std::uint32_t pair0 = c >> 1;
  float* out = row + (c - cell0);
#pragma omp simd
  for (std::uint32_t i = 0; i < pairs; ++i) {
    detail::erased_pair(key, p, inv_tail_prob, pair0 + i, out[2 * i],
                        out[2 * i + 1]);
  }
  c += pairs * 2;
  if (c < end) {
    row[c - cell0] = detail::erased_cell(key, p, inv_tail_prob, c);
  }
}

void normal_row(DrawKey key, double mu, double sigma, double* out,
                std::uint32_t cell0, std::uint32_t n) noexcept {
  std::uint32_t c = cell0;
  const std::uint32_t end = cell0 + n;
  while (c < end && (c & 3u)) {
    out[c - cell0] = detail::normal_cell(key, mu, sigma, c);
    ++c;
  }
  const std::uint32_t quads = (end - c) / 4;
  const std::uint32_t quad0 = c >> 2;
  double* o = out + (c - cell0);
#pragma omp simd
  for (std::uint32_t i = 0; i < quads; ++i) {
    detail::normal_quad(key, mu, sigma, quad0 + i, o[4 * i], o[4 * i + 1],
                        o[4 * i + 2], o[4 * i + 3]);
  }
  c += quads * 4;
  while (c < end) {
    out[c - cell0] = detail::normal_cell(key, mu, sigma, c);
    ++c;
  }
}

void program_apply(float* row, const double* targets,
                   const std::uint8_t* bits, std::uint32_t n, double frac,
                   double vmax) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    row[i] = detail::program_apply_cell(row[i], targets[i], bits[i], frac,
                                        vmax);
  }
}

void disturb_row(DrawKey key, const DisturbParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept {
  std::uint32_t c = cell0;
  const std::uint32_t end = cell0 + n;
  while (c < end && (c & 3u)) {
    row[c - cell0] = detail::disturb_cell(key, p, row[c - cell0], c);
    ++c;
  }
  const std::uint32_t quads = (end - c) / 4;
  const std::uint32_t quad0 = c >> 2;
  float* r = row + (c - cell0);
#pragma omp simd
  for (std::uint32_t i = 0; i < quads; ++i) {
    detail::disturb_quad(key, p, quad0 + i, r[4 * i], r[4 * i + 1],
                         r[4 * i + 2], r[4 * i + 3]);
  }
  c += quads * 4;
  while (c < end) {
    row[c - cell0] = detail::disturb_cell(key, p, row[c - cell0], c);
    ++c;
  }
}

void leak_row(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
              double base, double floor_v, double sigma_ln, float* row,
              std::uint32_t cell0, std::uint32_t n) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    row[i] = detail::leak_cell(seed, block, page, base, floor_v, sigma_ln,
                               row[i], cell0 + i);
  }
}

void weak_mask(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
               double prob, std::uint8_t* mask, std::uint32_t cell0,
               std::uint32_t n) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    mask[i] = detail::weak_cell(seed, block, page, prob, cell0 + i);
  }
}

void quantize_row(const float* row, int* out, std::uint32_t n) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = detail::quantize_cell(row[i]);
  }
}

void threshold_row(const float* row, double vref, std::uint8_t* out,
                   std::uint32_t n) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(row[i]) < vref ? std::uint8_t{1}
                                                : std::uint8_t{0};
  }
}

}  // namespace stash::kernels
