// Batch voltage-domain kernels: the SIMD build.  This translation unit is
// compiled -O3 -fopenmp-simd -ffp-contract=off (see CMakeLists.txt); every
// loop body is a pure per-cell function from cell_ops.hpp, so forcing SIMD
// cannot change results — only throughput.
//
// The normal-drawing kernels iterate over cell PAIRS (erased_fill) or
// QUADS (normal_row, disturb_row) — one Philox draw per group; see
// cell_ops.hpp.  A chunk whose boundary splits a group is handled by
// scalar prologue/epilogue cells that recompute the shared draw and keep
// one lane — bit-identical to the grouped path, so the chunk-partition
// contract holds at any split point.

#include "stash/kernels/kernels.hpp"

#include <cmath>
#include <limits>

#if defined(__AVX512F__) && defined(__AVX512BW__)
#include <immintrin.h>
#endif

#include "cell_ops.hpp"

namespace stash::kernels {

void erased_fill(DrawKey key, const ErasedParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept {
  const double inv_tail_prob = 1.0 / p.tail_prob;
  std::uint32_t c = cell0;
  const std::uint32_t end = cell0 + n;
  if (c < end && (c & 1u)) {
    row[0] = detail::erased_cell(key, p, inv_tail_prob, c);
    ++c;
  }
  const std::uint32_t pairs = (end - c) / 2;
  const std::uint32_t pair0 = c >> 1;
  float* out = row + (c - cell0);
#pragma omp simd
  for (std::uint32_t i = 0; i < pairs; ++i) {
    detail::erased_pair(key, p, inv_tail_prob, pair0 + i, out[2 * i],
                        out[2 * i + 1]);
  }
  c += pairs * 2;
  if (c < end) {
    row[c - cell0] = detail::erased_cell(key, p, inv_tail_prob, c);
  }
}

void normal_row(DrawKey key, double mu, double sigma, double* out,
                std::uint32_t cell0, std::uint32_t n) noexcept {
  std::uint32_t c = cell0;
  const std::uint32_t end = cell0 + n;
  while (c < end && (c & 3u)) {
    out[c - cell0] = detail::normal_cell(key, mu, sigma, c);
    ++c;
  }
  const std::uint32_t quads = (end - c) / 4;
  const std::uint32_t quad0 = c >> 2;
  double* o = out + (c - cell0);
#pragma omp simd
  for (std::uint32_t i = 0; i < quads; ++i) {
    detail::normal_quad(key, mu, sigma, quad0 + i, o[4 * i], o[4 * i + 1],
                        o[4 * i + 2], o[4 * i + 3]);
  }
  c += quads * 4;
  while (c < end) {
    out[c - cell0] = detail::normal_cell(key, mu, sigma, c);
    ++c;
  }
}

void program_apply(float* row, const double* targets,
                   const std::uint8_t* bits, std::uint32_t n, double frac,
                   double vmax) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    row[i] = detail::program_apply_cell(row[i], targets[i], bits[i], frac,
                                        vmax);
  }
}

void disturb_row(DrawKey key, const DisturbParams& p, float* row,
                 std::uint32_t cell0, std::uint32_t n) noexcept {
  std::uint32_t c = cell0;
  const std::uint32_t end = cell0 + n;
  while (c < end && (c & 3u)) {
    row[c - cell0] = detail::disturb_cell(key, p, row[c - cell0], c);
    ++c;
  }
  const std::uint32_t quads = (end - c) / 4;
  const std::uint32_t quad0 = c >> 2;
  float* r = row + (c - cell0);
#pragma omp simd
  for (std::uint32_t i = 0; i < quads; ++i) {
    detail::disturb_quad(key, p, quad0 + i, r[4 * i], r[4 * i + 1],
                         r[4 * i + 2], r[4 * i + 3]);
  }
  c += quads * 4;
  while (c < end) {
    row[c - cell0] = detail::disturb_cell(key, p, row[c - cell0], c);
    ++c;
  }
}

void leak_row(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
              double base, double floor_v, double sigma_ln, float* row,
              std::uint32_t cell0, std::uint32_t n) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    row[i] = detail::leak_cell(seed, block, page, base, floor_v, sigma_ln,
                               row[i], cell0 + i);
  }
}

void weak_mask(std::uint64_t seed, std::uint32_t block, std::uint32_t page,
               double prob, std::uint8_t* mask, std::uint32_t cell0,
               std::uint32_t n) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    mask[i] = detail::weak_cell(seed, block, page, prob, cell0 + i);
  }
}

void quantize_row(const float* row, int* out, std::uint32_t n) noexcept {
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = detail::quantize_cell(row[i]);
  }
}

void threshold_row(const float* row, double vref, std::uint8_t* out,
                   std::uint32_t n) noexcept {
  // Exact float-domain rewrite of `(double)row[i] < vref`: floats embed
  // exactly into double, so the comparison is equivalent to `row[i] < t`
  // with t = the smallest float >= vref.  Keeping the loop in one type
  // lets it vectorize as a plain vcmpps + byte select (the mixed
  // float/double compare compiled to scalar code and dominated the whole
  // device read path).  Row values are finite voltages, so the only
  // inputs are ordinary ordered compares.
  float t = static_cast<float>(vref);
  if (static_cast<double>(t) < vref) {
    t = std::nextafterf(t, std::numeric_limits<float>::infinity());
  }
#if defined(__AVX512F__) && defined(__AVX512BW__)
  // A page read is memory-bound: ~4 bytes in + 1 byte out per cell.  The
  // explicit path exists for the stores, not the compare — streaming them
  // (vmovntdq) skips the read-for-ownership of the output buffer, which
  // is pure overhead since the whole destination is overwritten.  Values
  // are bit-identical to the generic loop (_CMP_LT_OQ is `<` on the same
  // floats); only the cache behavior differs.
  const __m512 vt = _mm512_set1_ps(t);
  const __m512i ones = _mm512_set1_epi8(1);
  std::uint32_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(out + i) & 63u) != 0) {
    out[i] = row[i] < t ? std::uint8_t{1} : std::uint8_t{0};
    ++i;
  }
  for (; i + 64 <= n; i += 64) {
    const __mmask64 m0 = _mm512_cmp_ps_mask(_mm512_loadu_ps(row + i), vt,
                                            _CMP_LT_OQ);
    const __mmask64 m1 = _mm512_cmp_ps_mask(_mm512_loadu_ps(row + i + 16), vt,
                                            _CMP_LT_OQ);
    const __mmask64 m2 = _mm512_cmp_ps_mask(_mm512_loadu_ps(row + i + 32), vt,
                                            _CMP_LT_OQ);
    const __mmask64 m3 = _mm512_cmp_ps_mask(_mm512_loadu_ps(row + i + 48), vt,
                                            _CMP_LT_OQ);
    const __mmask64 m = m0 | (m1 << 16) | (m2 << 32) | (m3 << 48);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(out + i),
                        _mm512_maskz_mov_epi8(m, ones));
  }
  for (; i < n; ++i) {
    out[i] = row[i] < t ? std::uint8_t{1} : std::uint8_t{0};
  }
  _mm_sfence();  // streaming stores are weakly ordered; publish them
#else
#pragma omp simd
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = row[i] < t ? std::uint8_t{1} : std::uint8_t{0};
  }
#endif
}

}  // namespace stash::kernels
