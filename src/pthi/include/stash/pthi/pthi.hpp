#pragma once
// PT-HI: the program-time hiding baseline (Wang et al., IEEE S&P 2013) the
// paper compares against in Table 1 and §8.  Hidden bits are encoded by
// applying hundreds of extra program cycles to half of each keyed cell
// group; the stressed cells become permanently faster to program.  Decoding
// races the group with partial-programming steps and watches which half
// crosses a reference voltage first — a destructive process that wipes any
// public data in the block.

#include <cstdint>
#include <span>
#include <vector>

#include "stash/crypto/drbg.hpp"
#include "stash/nand/chip.hpp"
#include "stash/util/status.hpp"

namespace stash::pthi {

using util::Result;
using util::Status;

struct PthiConfig {
  /// Cells per hidden bit; half are stressed, half are the reference.
  /// 26 cells/bit reproduces the paper's PT-HI capacity figure (72 Kb per
  /// 64-page block of 144384-cell pages at a 4-page interval).
  std::uint32_t group_cells = 26;
  /// Extra program cycles applied to the stressed half (paper §8 uses the
  /// optimal 625 from Wang et al.).
  std::uint32_t stress_cycles = 625;
  /// Pages skipped between hidden pages (paper §8: 4).
  std::uint32_t page_interval = 4;
  /// PP+read rounds used by the decode race (paper §8: 30).
  int decode_pp_steps = 30;
  /// Reference voltage the race crosses.
  double race_vref = 120.0;
  /// Hidden bits per page; 0 = maximum (cells_per_page / group_cells).
  std::uint32_t bits_per_page = 0;
};

struct PthiCapacity {
  std::uint32_t pages_used = 0;
  std::uint32_t bits_per_page = 0;
  std::size_t bits_per_block = 0;
};

class PthiCodec {
 public:
  PthiCodec(nand::FlashChip& chip, const crypto::HidingKey& key,
            PthiConfig config = {});

  [[nodiscard]] const PthiConfig& config() const noexcept { return config_; }
  [[nodiscard]] PthiCapacity capacity() const;
  [[nodiscard]] std::vector<std::uint32_t> hidden_pages() const;

  /// Encode raw hidden bits into one page's cell groups.  The block should
  /// be erased; encoding applies heavy program stress (and the equivalent
  /// wear), after which public data may be written over it.
  Status encode_page(std::uint32_t block, std::uint32_t page,
                     std::span<const std::uint8_t> bits);

  /// Encode bits across all hidden pages of a block (round-robin order),
  /// then account the block-level stress wear.
  Status encode_block(std::uint32_t block,
                      std::span<const std::uint8_t> bits);

  /// DESTRUCTIVE decode of one page: runs the PP race.  The page (and in
  /// practice the whole block) must be erased first; afterwards it contains
  /// garbage.  Returns the recovered bits.
  Result<std::vector<std::uint8_t>> decode_page(std::uint32_t block,
                                                std::uint32_t page,
                                                std::uint32_t count);

  /// DESTRUCTIVE block decode: erases the block (killing public data — the
  /// Table 1 "repeated reads" entry), races every hidden page, and leaves
  /// the block full of partially-programmed garbage.
  Result<std::vector<std::uint8_t>> decode_block(std::uint32_t block,
                                                 std::size_t bit_count);

 private:
  /// Keyed assignment of cell groups for a page: a deterministic
  /// permutation prefix, group i = cells [i*G, (i+1)*G).
  [[nodiscard]] std::vector<std::uint32_t> group_cells_for(
      std::uint32_t block, std::uint32_t page, std::uint32_t groups) const;

  nand::FlashChip* chip_;
  std::array<std::uint8_t, 32> selection_key_;
  PthiConfig config_;
};

}  // namespace stash::pthi
