#include "stash/pthi/pthi.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "stash/telemetry/metrics.hpp"

namespace stash::pthi {

namespace {

struct PthiTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& encode_pages = reg.counter("pthi.encode_pages");
  telemetry::Counter& decode_pages = reg.counter("pthi.decode_pages");
  telemetry::Counter& race_steps = reg.counter("pthi.race_steps");
};

PthiTelemetry& pthi_telemetry() {
  static PthiTelemetry t;
  return t;
}

}  // namespace

using util::ErrorCode;

PthiCodec::PthiCodec(nand::FlashChip& chip, const crypto::HidingKey& key,
                     PthiConfig config)
    : chip_(&chip), selection_key_(key.selection_key()), config_(config) {}

std::vector<std::uint32_t> PthiCodec::hidden_pages() const {
  std::vector<std::uint32_t> pages;
  const std::uint32_t stride = config_.page_interval + 1;
  for (std::uint32_t p = 0; p < chip_->geometry().pages_per_block; p += stride) {
    pages.push_back(p);
  }
  return pages;
}

PthiCapacity PthiCodec::capacity() const {
  PthiCapacity cap;
  const auto& geom = chip_->geometry();
  cap.bits_per_page = config_.bits_per_page
                          ? config_.bits_per_page
                          : geom.cells_per_page / config_.group_cells;
  cap.pages_used = static_cast<std::uint32_t>(hidden_pages().size());
  cap.bits_per_block =
      static_cast<std::size_t>(cap.pages_used) * cap.bits_per_page;
  return cap;
}

std::vector<std::uint32_t> PthiCodec::group_cells_for(
    std::uint32_t block, std::uint32_t page, std::uint32_t groups) const {
  // Deterministic keyed sample of groups*G distinct cells, in draw order.
  const std::uint32_t need = groups * config_.group_cells;
  const std::uint32_t cells = chip_->geometry().cells_per_page;
  const std::string personalization =
      "pt-hi/b" + std::to_string(block) + "/p" + std::to_string(page);
  crypto::Sha256Drbg drbg(selection_key_, personalization);
  std::vector<std::uint8_t> seen(cells, 0);
  std::vector<std::uint32_t> chosen;
  chosen.reserve(need);
  while (chosen.size() < need) {
    const auto c = static_cast<std::uint32_t>(drbg.below(cells));
    if (seen[c]) continue;
    seen[c] = 1;
    chosen.push_back(c);
  }
  return chosen;
}

Status PthiCodec::encode_page(std::uint32_t block, std::uint32_t page,
                              std::span<const std::uint8_t> bits) {
  const auto cap = capacity();
  if (bits.size() > cap.bits_per_page) {
    return {ErrorCode::kNoSpace, "too many hidden bits for one page"};
  }
  pthi_telemetry().encode_pages.inc();
  const auto cells =
      group_cells_for(block, page, static_cast<std::uint32_t>(bits.size()));
  const std::uint32_t g = config_.group_cells;
  const std::uint32_t half = g / 2;

  std::vector<std::uint32_t> to_stress;
  to_stress.reserve(bits.size() * half);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Bit 1: stress the first half of the group; bit 0: the second half.
    const std::uint32_t base = static_cast<std::uint32_t>(i) * g;
    const std::uint32_t offset = (bits[i] & 1) ? 0 : half;
    for (std::uint32_t j = 0; j < half; ++j) {
      to_stress.push_back(cells[base + offset + j]);
    }
  }
  return chip_->stress_cells(block, page, to_stress, config_.stress_cycles);
}

Status PthiCodec::encode_block(std::uint32_t block,
                               std::span<const std::uint8_t> bits) {
  const auto cap = capacity();
  if (bits.size() > cap.bits_per_block) {
    return {ErrorCode::kNoSpace, "too many hidden bits for one block"};
  }
  // The stress encoding physically cycles the whole block stress_cycles
  // times: every page is programmed on every cycle, with the stress pattern
  // on hidden pages and dummy data elsewhere (Wang et al.; the paper's §8
  // arithmetic charges 64 page-programs plus one erase per cycle).
  const auto pages = hidden_pages();
  std::size_t offset = 0;
  std::size_t next_hidden = 0;
  for (std::uint32_t p = 0; p < chip_->geometry().pages_per_block; ++p) {
    const bool hidden = next_hidden < pages.size() && pages[next_hidden] == p;
    if (hidden && offset < bits.size()) {
      const std::size_t take =
          std::min<std::size_t>(cap.bits_per_page, bits.size() - offset);
      STASH_RETURN_IF_ERROR(encode_page(block, p, bits.subspan(offset, take)));
      offset += take;
    } else {
      // Dummy traffic: same program cost, no deliberate stress.
      STASH_RETURN_IF_ERROR(
          chip_->stress_cells(block, p, {}, config_.stress_cycles));
    }
    if (hidden) ++next_hidden;
  }
  return chip_->age_cycles(block, config_.stress_cycles,
                           /*charge_ledger=*/true);
}

Result<std::vector<std::uint8_t>> PthiCodec::decode_page(std::uint32_t block,
                                                         std::uint32_t page,
                                                         std::uint32_t count) {
  if (count == 0) return std::vector<std::uint8_t>{};
  const auto cap = capacity();
  if (count > cap.bits_per_page) {
    return Status{ErrorCode::kInvalidArgument, "count exceeds page capacity"};
  }
  if (chip_->page_state(block, page) != nand::PageState::kErased) {
    return Status{ErrorCode::kInvalidArgument,
                  "PT-HI race decode needs an erased page"};
  }
  pthi_telemetry().decode_pages.inc();
  const auto cells = group_cells_for(block, page, count);
  const std::uint32_t g = config_.group_cells;
  const std::uint32_t half = g / 2;

  // PP race: repeatedly nudge all group cells and record the step at which
  // each crosses the reference voltage.  Stressed (faster) cells cross
  // earlier.
  std::vector<int> crossing(cells.size(), config_.decode_pp_steps + 1);
  for (int step = 1; step <= config_.decode_pp_steps; ++step) {
    pthi_telemetry().race_steps.inc();
    STASH_RETURN_IF_ERROR(chip_->partial_program(block, page, cells));
    const auto volts = chip_->probe_voltages(block, page);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (crossing[i] > config_.decode_pp_steps &&
          static_cast<double>(volts[cells[i]]) >= config_.race_vref) {
        crossing[i] = step;
      }
    }
  }

  std::vector<std::uint8_t> bits(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    double first = 0.0, second = 0.0;
    for (std::uint32_t j = 0; j < half; ++j) {
      first += crossing[i * g + j];
      second += crossing[i * g + half + j];
    }
    // The stressed half crosses first (lower mean step).
    bits[i] = first < second ? 1 : 0;
  }
  return bits;
}

Result<std::vector<std::uint8_t>> PthiCodec::decode_block(
    std::uint32_t block, std::size_t bit_count) {
  // Destructive: wipe whatever public data is present, then race each page.
  STASH_RETURN_IF_ERROR(chip_->erase_block(block));
  const auto cap = capacity();
  std::vector<std::uint8_t> bits;
  bits.reserve(bit_count);
  for (std::uint32_t p : hidden_pages()) {
    if (bits.size() >= bit_count) break;
    const auto take = static_cast<std::uint32_t>(std::min<std::size_t>(
        cap.bits_per_page, bit_count - bits.size()));
    auto page_bits = decode_page(block, p, take);
    if (!page_bits.is_ok()) return page_bits.status();
    const auto& pb = page_bits.value();
    bits.insert(bits.end(), pb.begin(), pb.end());
  }
  return bits;
}

}  // namespace stash::pthi
