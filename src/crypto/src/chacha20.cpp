#include "stash/crypto/chacha20.hpp"

#include <cstring>
#include <stdexcept>

namespace stash::crypto {
namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce, std::uint32_t counter) {
  if (key.size() != kKeyBytes) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kNonceBytes) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + i * 4);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + i * 4);
}

void ChaCha20::refill() noexcept {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t word = x[i] + state_[i];
    keystream_[i * 4] = static_cast<std::uint8_t>(word);
    keystream_[i * 4 + 1] = static_cast<std::uint8_t>(word >> 8);
    keystream_[i * 4 + 2] = static_cast<std::uint8_t>(word >> 16);
    keystream_[i * 4 + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  ++state_[12];
  keystream_pos_ = 0;
}

void ChaCha20::apply(std::span<std::uint8_t> data) noexcept {
  for (std::uint8_t& byte : data) {
    if (keystream_pos_ == 64) refill();
    byte ^= keystream_[keystream_pos_++];
  }
}

std::vector<std::uint8_t> ChaCha20::crypt(std::span<const std::uint8_t> key,
                                          std::span<const std::uint8_t> nonce,
                                          std::span<const std::uint8_t> data,
                                          std::uint32_t counter) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, counter);
  cipher.apply(out);
  return out;
}

}  // namespace stash::crypto
