#include "stash/crypto/drbg.hpp"

#include <cstring>

#include "stash/telemetry/metrics.hpp"

namespace stash::crypto {

namespace {

struct DrbgTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& instantiations = reg.counter("crypto.drbg.instantiations");
  telemetry::Counter& refills = reg.counter("crypto.drbg.refills");
};

DrbgTelemetry& drbg_telemetry() {
  static DrbgTelemetry t;
  return t;
}

}  // namespace

Sha256Drbg::Sha256Drbg(std::span<const std::uint8_t> seed,
                       const std::string& personalization) {
  Sha256 h;
  h.update(seed);
  h.update(personalization);
  key_ = h.finish();
  drbg_telemetry().instantiations.inc();
}

void Sha256Drbg::refill() noexcept {
  drbg_telemetry().refills.inc();
  std::array<std::uint8_t, 40> input{};
  std::memcpy(input.data(), key_.data(), key_.size());
  for (int i = 0; i < 8; ++i) {
    input[32 + i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
  }
  block_ = Sha256::hash(input);
  ++counter_;
  pos_ = 0;
}

std::uint8_t Sha256Drbg::next_byte() noexcept {
  if (pos_ == 32) refill();
  return block_[pos_++];
}

std::uint64_t Sha256Drbg::next_u64() noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | next_byte();
  }
  return v;
}

std::uint64_t Sha256Drbg::below(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

void Sha256Drbg::fill(std::span<std::uint8_t> out) noexcept {
  for (std::uint8_t& b : out) b = next_byte();
}

HidingKey HidingKey::from_passphrase(const std::string& passphrase,
                                     const std::string& salt, int iterations) {
  Sha256 h;
  h.update(salt);
  h.update(passphrase);
  Digest256 d = h.finish();
  for (int i = 1; i < iterations; ++i) {
    Sha256 round;
    round.update(d);
    round.update(passphrase);
    d = round.finish();
  }
  std::array<std::uint8_t, kBytes> key{};
  std::memcpy(key.data(), d.data(), kBytes);
  return HidingKey(key);
}

std::array<std::uint8_t, HidingKey::kBytes> HidingKey::derive(
    const char* label) const {
  const std::string info = label;
  const auto okm = hkdf_sha256(
      key_, std::span<const std::uint8_t>{},
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(info.data()), info.size()),
      kBytes);
  std::array<std::uint8_t, kBytes> out{};
  std::memcpy(out.data(), okm.data(), kBytes);
  return out;
}

std::array<std::uint8_t, HidingKey::kBytes> HidingKey::selection_key() const {
  return derive("vt-hi cell selection v1");
}

std::array<std::uint8_t, HidingKey::kBytes> HidingKey::cipher_key() const {
  return derive("vt-hi payload cipher v1");
}

std::array<std::uint8_t, HidingKey::kBytes> HidingKey::mac_key() const {
  return derive("vt-hi payload mac v1");
}

}  // namespace stash::crypto
