#pragma once
// Deterministic random bit generator built on SHA-256 in counter mode, plus
// the hiding-key type.  VT-HI never persists the locations of cells storing
// hidden data: the (key, page) pair re-generates the exact same selection
// stream on every boot (paper §5.3, "Hidden cell selection").

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stash/crypto/sha256.hpp"

namespace stash::crypto {

/// SHA-256 counter-mode DRBG: deterministic byte/integer stream keyed by a
/// 32-byte seed and an arbitrary personalization string (e.g. page address).
class Sha256Drbg {
 public:
  Sha256Drbg(std::span<const std::uint8_t> seed, const std::string& personalization);

  std::uint8_t next_byte() noexcept;
  std::uint64_t next_u64() noexcept;

  /// Unbiased integer in [0, n), n > 0 (rejection sampling).
  std::uint64_t below(std::uint64_t n) noexcept;

  void fill(std::span<std::uint8_t> out) noexcept;

 private:
  void refill() noexcept;

  Digest256 key_{};
  std::uint64_t counter_ = 0;
  Digest256 block_{};
  std::size_t pos_ = 32;  // exhausted until first refill
};

/// The hiding user's secret key with domain-separated subkey derivation.
/// A single user-supplied key fans out (via HKDF-SHA256) into independent
/// keys for cell selection, payload encryption, and authentication.
class HidingKey {
 public:
  static constexpr std::size_t kBytes = 32;

  explicit HidingKey(std::array<std::uint8_t, kBytes> key) : key_(key) {}

  /// Derive a key by stretching a passphrase (iterated salted hashing).
  [[nodiscard]] static HidingKey from_passphrase(const std::string& passphrase,
                                                 const std::string& salt,
                                                 int iterations = 10000);

  [[nodiscard]] std::array<std::uint8_t, kBytes> selection_key() const;
  [[nodiscard]] std::array<std::uint8_t, kBytes> cipher_key() const;
  [[nodiscard]] std::array<std::uint8_t, kBytes> mac_key() const;

  [[nodiscard]] const std::array<std::uint8_t, kBytes>& raw() const noexcept {
    return key_;
  }

  bool operator==(const HidingKey&) const = default;

 private:
  [[nodiscard]] std::array<std::uint8_t, kBytes> derive(const char* label) const;

  std::array<std::uint8_t, kBytes> key_;
};

}  // namespace stash::crypto
