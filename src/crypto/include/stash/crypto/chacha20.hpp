#pragma once
// ChaCha20 stream cipher (RFC 8439).  VT-HI encrypts the hidden payload
// before embedding (Algorithm 1, step 4) so that hidden bit values are
// uniformly distributed — the same reason SSD controllers scramble data.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace stash::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeyBytes = 32;
  static constexpr std::size_t kNonceBytes = 12;

  ChaCha20(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> nonce, std::uint32_t counter = 0);

  /// XOR the keystream into `data` in place (encrypt == decrypt).
  void apply(std::span<std::uint8_t> data) noexcept;

  /// One-shot convenience returning a fresh buffer.
  [[nodiscard]] static std::vector<std::uint8_t> crypt(
      std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
      std::span<const std::uint8_t> data, std::uint32_t counter = 0);

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> keystream_{};
  std::size_t keystream_pos_ = 64;  // empty until first refill
};

}  // namespace stash::crypto
