#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch.  The paper's Algorithm 1
// names SHA-256 as the keyed PRNG that selects which cells carry hidden
// bits; it is also the base of our HMAC / HKDF / DRBG stack.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace stash::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(const std::string& s) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Finalize and return the digest.  The object must be reset() before reuse.
  [[nodiscard]] Digest256 finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest256 hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Digest256 hash(const std::string& s) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
[[nodiscard]] Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> message) noexcept;

/// HKDF-SHA256 (RFC 5869) expand+extract; derives subkeys (payload cipher
/// key, cell-selection key, MAC key) from the user's single hiding key.
[[nodiscard]] std::vector<std::uint8_t> hkdf_sha256(
    std::span<const std::uint8_t> ikm, std::span<const std::uint8_t> salt,
    std::span<const std::uint8_t> info, std::size_t length);

/// Hex encoding of a digest, for logging and examples.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace stash::crypto
