#include "stash/svm/svm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stash/telemetry/metrics.hpp"
#include "stash/util/rng.hpp"

namespace stash::svm {
namespace {

double kernel_eval(const KernelParams& k, std::span<const double> a,
                   std::span<const double> b) {
  switch (k.type) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kRbf: {
      double d2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
      }
      return std::exp(-k.gamma * d2);
    }
  }
  return 0.0;
}

}  // namespace

void StandardScaler::fit(const std::vector<std::vector<double>>& x) {
  if (x.empty()) throw std::invalid_argument("StandardScaler: empty input");
  const std::size_t dim = x.front().size();
  mean_.assign(dim, 0.0);
  inv_std_.assign(dim, 1.0);
  for (const auto& row : x) {
    for (std::size_t j = 0; j < dim; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(x.size());
  std::vector<double> var(dim, 0.0);
  for (const auto& row : x) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = row[j] - mean_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(x.size()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> v) const {
  std::vector<double> out(v.size());
  for (std::size_t j = 0; j < v.size() && j < mean_.size(); ++j) {
    out[j] = (v[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

void StandardScaler::transform_in_place(
    std::vector<std::vector<double>>& x) const {
  for (auto& row : x) {
    for (std::size_t j = 0; j < row.size() && j < mean_.size(); ++j) {
      row[j] = (row[j] - mean_[j]) * inv_std_[j];
    }
  }
}

SvmModel SvmModel::train(const Dataset& data, const SvmConfig& config) {
  auto& reg = telemetry::MetricsRegistry::global();
  reg.counter("svm.trainings").inc();
  telemetry::ScopedTimer timer(reg.histogram("svm.train_ns"));
  const std::size_t n = data.size();
  if (n == 0) throw std::invalid_argument("SvmModel::train: empty dataset");
  for (int label : data.y) {
    if (label != 1 && label != -1) {
      throw std::invalid_argument("SvmModel::train: labels must be +/-1");
    }
  }

  // Precompute the kernel matrix; detectability datasets are a few hundred
  // samples, so O(n^2) memory is fine.
  std::vector<std::vector<double>> k(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      k[i][j] = k[j][i] = kernel_eval(config.kernel, data.x[i], data.x[j]);
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  util::Xoshiro256 rng(config.seed);

  auto f = [&](std::size_t i) {
    double s = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] > 0.0) s += alpha[j] * data.y[j] * k[i][j];
    }
    return s;
  };

  // Simplified SMO (Platt 1998 as in the Stanford CS229 formulation).
  int passes = 0;
  const double c = config.c;
  const double tol = config.tol;
  while (passes < config.max_passes) {
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = f(i) - data.y[i];
      const bool violates = (data.y[i] * ei < -tol && alpha[i] < c) ||
                            (data.y[i] * ei > tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = rng.below(n - 1);
      if (j >= i) ++j;
      const double ej = f(j) - data.y[j];

      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo, hi;
      if (data.y[i] != data.y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
      if (eta >= 0.0) continue;

      double aj = aj_old - data.y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;

      const double ai = ai_old + data.y[i] * data.y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - ei - data.y[i] * (ai - ai_old) * k[i][i] -
                        data.y[j] * (aj - aj_old) * k[i][j];
      const double b2 = b - ej - data.y[i] * (ai - ai_old) * k[i][j] -
                        data.y[j] * (aj - aj_old) * k[j][j];
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  SvmModel model;
  model.kernel_ = config.kernel;
  model.bias_ = b;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-8) {
      model.support_.push_back(data.x[i]);
      model.coeff_.push_back(alpha[i] * data.y[i]);
    }
  }
  return model;
}

double SvmModel::decision(std::span<const double> v) const {
  double s = bias_;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    s += coeff_[i] * kernel_eval(kernel_, support_[i], v);
  }
  return s;
}

double SvmModel::accuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += predict(data.x[i]) == data.y[i];
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double cross_validate(const Dataset& data, const SvmConfig& config, int folds,
                      std::uint64_t seed) {
  const std::size_t n = data.size();
  if (n < static_cast<std::size_t>(folds) || folds < 2) return 0.0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.below(i + 1)]);
  }

  double acc_sum = 0.0;
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train, test;
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::size_t i = order[idx];
      if (static_cast<int>(idx % static_cast<std::size_t>(folds)) == fold) {
        test.add(data.x[i], data.y[i]);
      } else {
        train.add(data.x[i], data.y[i]);
      }
    }
    if (train.size() == 0 || test.size() == 0) continue;
    const SvmModel model = SvmModel::train(train, config);
    acc_sum += model.accuracy(test);
  }
  return acc_sum / folds;
}

GridSearchResult grid_search(const Dataset& data, KernelType kernel, int folds,
                             std::uint64_t seed) {
  GridSearchResult result;
  const std::size_t dim = data.size() ? data.x.front().size() : 1;
  const double gamma_scale = 1.0 / static_cast<double>(dim);

  const double c_grid[] = {0.1, 1.0, 10.0, 100.0};
  const double gamma_grid[] = {0.1 * gamma_scale, gamma_scale,
                               10.0 * gamma_scale};

  for (double c : c_grid) {
    if (kernel == KernelType::kLinear) {
      SvmConfig cfg;
      cfg.c = c;
      cfg.kernel = {KernelType::kLinear, 0.0};
      const double acc = cross_validate(data, cfg, folds, seed);
      if (acc > result.best_cv_accuracy) {
        result.best_cv_accuracy = acc;
        result.best = cfg;
      }
    } else {
      for (double gamma : gamma_grid) {
        SvmConfig cfg;
        cfg.c = c;
        cfg.kernel = {KernelType::kRbf, gamma};
        const double acc = cross_validate(data, cfg, folds, seed);
        if (acc > result.best_cv_accuracy) {
          result.best_cv_accuracy = acc;
          result.best = cfg;
        }
      }
    }
  }
  return result;
}

}  // namespace stash::svm
