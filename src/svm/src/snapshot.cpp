#include "stash/svm/snapshot.hpp"

namespace stash::svm {

namespace {
constexpr double kErasedBandCeiling = 90.0;
}

VoltageSnapshot VoltageSnapshot::capture(
    nand::FlashChip& chip, const std::vector<std::uint32_t>& blocks) {
  VoltageSnapshot snap;
  snap.blocks = blocks;
  snap.volts.reserve(blocks.size());
  for (std::uint32_t b : blocks) {
    std::vector<int> cells;
    cells.reserve(static_cast<std::size_t>(chip.geometry().pages_per_block) *
                  chip.geometry().cells_per_page);
    for (std::uint32_t p = 0; p < chip.geometry().pages_per_block; ++p) {
      const auto page = chip.probe_voltages(b, p);
      cells.insert(cells.end(), page.begin(), page.end());
    }
    snap.volts.push_back(std::move(cells));
  }
  return snap;
}

std::vector<SnapshotDiff> SnapshotAdversary::diff(
    const VoltageSnapshot& before, const VoltageSnapshot& after) const {
  std::vector<SnapshotDiff> diffs;
  const std::size_t n = std::min(before.blocks.size(), after.blocks.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (before.blocks[i] != after.blocks[i] ||
        before.volts[i].size() != after.volts[i].size()) {
      continue;
    }
    SnapshotDiff d;
    d.block = before.blocks[i];
    std::size_t erased_band = 0;
    for (std::size_t c = 0; c < before.volts[i].size(); ++c) {
      const double v0 = before.volts[i][c];
      const double v1 = after.volts[i][c];
      const bool was_erased = v0 < kErasedBandCeiling;
      const bool is_erased = v1 < kErasedBandCeiling;
      if (was_erased != is_erased) {
        ++d.reprogrammed_cells;
        continue;
      }
      if (was_erased) {
        ++erased_band;
        if (v1 - v0 >= rise_threshold_) ++d.raised_erased_cells;
      }
    }
    // Block-level erase/program activity explains any in-band movement:
    // when a substantial fraction of cells changed bands, the block was
    // rewritten and in-band rises are expected (fresh erase/program noise).
    const bool rewritten =
        d.reprogrammed_cells >
        before.volts[i].size() / 50;  // >2% of cells switched bands
    d.suspicion = (erased_band && !rewritten)
                      ? static_cast<double>(d.raised_erased_cells) /
                            static_cast<double>(erased_band)
                      : 0.0;
    diffs.push_back(d);
  }
  return diffs;
}

std::vector<std::uint32_t> SnapshotAdversary::suspicious_blocks(
    const VoltageSnapshot& before, const VoltageSnapshot& after) const {
  std::vector<std::uint32_t> flagged;
  for (const auto& d : diff(before, after)) {
    if (d.suspicion > suspicion_threshold_) flagged.push_back(d.block);
  }
  return flagged;
}

}  // namespace stash::svm
