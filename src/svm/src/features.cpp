#include "stash/svm/features.hpp"

#include "stash/util/bitvec.hpp"
#include "stash/util/stats.hpp"

namespace stash::svm {

std::vector<double> block_histogram_features(const nand::FlashChip& chip,
                                             std::uint32_t block,
                                             std::size_t bins) {
  return chip.voltage_histogram(block, bins).normalized();
}

std::vector<double> page_histogram_features(const nand::FlashChip& chip,
                                            std::uint32_t block,
                                            std::uint32_t page,
                                            std::size_t bins) {
  return chip.page_voltage_histogram(block, page, bins).normalized();
}

std::vector<double> summary_features(
    nand::FlashChip& chip, std::uint32_t block,
    const std::vector<std::vector<std::uint8_t>>& written_data) {
  // Public BER across the block.
  std::size_t errors = 0;
  std::size_t total = 0;
  util::RunningStats erased_stats, programmed_stats;
  for (std::uint32_t p = 0; p < chip.geometry().pages_per_block &&
                            p < written_data.size();
       ++p) {
    const auto readback = chip.read_page(block, p);
    const auto& sent = written_data[p];
    const auto volts = chip.probe_voltages(block, p);
    for (std::size_t c = 0; c < readback.size() && c < sent.size(); ++c) {
      errors += ((readback[c] ^ sent[c]) & 1) != 0;
      ++total;
      if (sent[c] & 1) {
        erased_stats.add(static_cast<double>(volts[c]));
      } else {
        programmed_stats.add(static_cast<double>(volts[c]));
      }
    }
  }
  const double ber =
      total ? static_cast<double>(errors) / static_cast<double>(total) : 0.0;
  return {ber,
          erased_stats.mean(),     erased_stats.stddev(),
          programmed_stats.mean(), programmed_stats.stddev()};
}

}  // namespace stash::svm
