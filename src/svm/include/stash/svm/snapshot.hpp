#pragma once
// Multiple-snapshot adversary (paper §9.2): an attacker who can image the
// device's voltage levels at two points in time.  Hidden-data writes that
// are not covered by public-data activity leave a telltale signature —
// erased-level cells whose charge rose although the page was never
// (re)programmed.  The stego layer defeats this by piggybacking hiding on
// genuine public writes (cover traffic), which is what StegoVolume's
// store/rescue/re-embed flow does.

#include <cstdint>
#include <vector>

#include "stash/nand/chip.hpp"

namespace stash::svm {

/// A full voltage image of selected blocks, as the paper's probing
/// adversary would capture with the vendor characterization command.
struct VoltageSnapshot {
  std::vector<std::uint32_t> blocks;
  /// volts[i] holds block blocks[i], page-major.
  std::vector<std::vector<int>> volts;

  [[nodiscard]] static VoltageSnapshot capture(
      nand::FlashChip& chip, const std::vector<std::uint32_t>& blocks);
};

struct SnapshotDiff {
  std::uint32_t block = 0;
  /// Cells whose measured level rose while staying inside the erased band
  /// (the fingerprint of partial programming).
  std::size_t raised_erased_cells = 0;
  /// Cells that moved between the erased and programmed bands (evidence of
  /// ordinary program/erase activity — innocent cover).
  std::size_t reprogrammed_cells = 0;
  /// Fraction of suspicious cells among all erased-band cells.
  double suspicion = 0.0;
};

class SnapshotAdversary {
 public:
  /// `rise_threshold`: minimum level increase that counts as deliberate
  /// charging (set above disturb/readout noise).  `suspicion_threshold`:
  /// fraction of in-band raised cells above which a block is flagged.
  explicit SnapshotAdversary(double rise_threshold = 4.0,
                             double suspicion_threshold = 5e-4)
      : rise_threshold_(rise_threshold),
        suspicion_threshold_(suspicion_threshold) {}

  /// Per-block diff between two snapshots of the same block set.
  [[nodiscard]] std::vector<SnapshotDiff> diff(
      const VoltageSnapshot& before, const VoltageSnapshot& after) const;

  /// Blocks whose erased-band cells gained charge without block-level
  /// program/erase cover.
  [[nodiscard]] std::vector<std::uint32_t> suspicious_blocks(
      const VoltageSnapshot& before, const VoltageSnapshot& after) const;

 private:
  double rise_threshold_;
  double suspicion_threshold_;
};

}  // namespace stash::svm
