#pragma once
// Soft-margin support vector machine trained with (simplified) SMO, written
// from scratch.  This is the attacker's tool in the paper's detectability
// methodology (§7, following Wang et al.): given voltage-level features of
// flash blocks/pages, predict whether they carry hidden data.  An accuracy
// of ~50% means the hiding scheme leaves no learnable trace.

#include <cstdint>
#include <span>
#include <vector>

namespace stash::svm {

enum class KernelType { kLinear, kRbf };

struct KernelParams {
  KernelType type = KernelType::kRbf;
  double gamma = 0.1;  // RBF only
};

struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<int> y;  // labels in {-1, +1}

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  void add(std::vector<double> features, int label) {
    x.push_back(std::move(features));
    y.push_back(label);
  }
};

/// Z-score feature scaler (fit on training data, apply everywhere).
class StandardScaler {
 public:
  void fit(const std::vector<std::vector<double>>& x);
  [[nodiscard]] std::vector<double> transform(std::span<const double> v) const;
  void transform_in_place(std::vector<std::vector<double>>& x) const;

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

struct SvmConfig {
  double c = 1.0;          // soft-margin penalty
  KernelParams kernel;
  double tol = 1e-3;
  int max_passes = 8;      // SMO termination (full sweeps without progress)
  std::uint64_t seed = 42;
};

class SvmModel {
 public:
  /// Train on a dataset with labels in {-1, +1}.
  static SvmModel train(const Dataset& data, const SvmConfig& config);

  [[nodiscard]] double decision(std::span<const double> v) const;
  [[nodiscard]] int predict(std::span<const double> v) const {
    return decision(v) >= 0.0 ? +1 : -1;
  }

  [[nodiscard]] double accuracy(const Dataset& data) const;
  [[nodiscard]] std::size_t n_support_vectors() const noexcept {
    return support_.size();
  }

 private:
  KernelParams kernel_;
  std::vector<std::vector<double>> support_;
  std::vector<double> coeff_;  // alpha_i * y_i
  double bias_ = 0.0;
};

/// k-fold cross-validated accuracy (features must be pre-scaled).
[[nodiscard]] double cross_validate(const Dataset& data, const SvmConfig& config,
                                    int folds, std::uint64_t seed = 7);

struct GridSearchResult {
  SvmConfig best;
  double best_cv_accuracy = 0.0;
};

/// Paper §7: "the classifier used optimal parameters obtained using grid
/// search" with three-fold cross-validation.  Sweeps C (and gamma for RBF).
[[nodiscard]] GridSearchResult grid_search(const Dataset& data,
                                           KernelType kernel, int folds = 3,
                                           std::uint64_t seed = 7);

}  // namespace stash::svm
