#pragma once
// Feature extractors turning flash voltage measurements into SVM inputs,
// mirroring the paper's two detectability analyses (§7): (1) the full
// voltage-level distribution of a block or page, and (2) summary
// characteristics of public data (BER, mean voltage, standard deviation).

#include <vector>

#include "stash/nand/chip.hpp"

namespace stash::svm {

/// Normalized voltage histogram of a whole block (default 64 bins over the
/// 0-255 scale — fine enough to see state structure, coarse enough to
/// train on dozens of samples).
[[nodiscard]] std::vector<double> block_histogram_features(
    const nand::FlashChip& chip, std::uint32_t block, std::size_t bins = 64);

/// Normalized voltage histogram of a single page.
[[nodiscard]] std::vector<double> page_histogram_features(
    const nand::FlashChip& chip, std::uint32_t block, std::uint32_t page,
    std::size_t bins = 64);

/// The paper's alternate attack: classify on public-data characteristics —
/// measured public BER plus the mean and standard deviation of the cell
/// voltages (per voltage state), rather than the full distribution.
[[nodiscard]] std::vector<double> summary_features(
    nand::FlashChip& chip, std::uint32_t block,
    const std::vector<std::vector<std::uint8_t>>& written_data);

}  // namespace stash::svm
