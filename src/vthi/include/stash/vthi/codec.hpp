#pragma once
// VthiCodec: the user-facing VT-HI pipeline from the paper's Figure 4 —
//   payload -> encrypt (ChaCha20) -> authenticate (HMAC) -> ECC (BCH)
//           -> keyed cell selection -> iterative partial programming,
// and the reverse on reveal.  One codec instance manages one flash chip
// with one hiding key; payloads are hidden at block granularity.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "stash/crypto/drbg.hpp"
#include "stash/crypto/sha256.hpp"
#include "stash/ecc/bch.hpp"
#include "stash/nand/chip.hpp"
#include "stash/util/batch.hpp"
#include "stash/util/status.hpp"
#include "stash/vthi/channel.hpp"
#include "stash/vthi/config.hpp"

namespace stash::vthi {

struct HideReport {
  std::uint32_t pages_used = 0;
  std::uint32_t codewords = 0;
  std::size_t payload_bytes = 0;
  std::size_t capacity_bytes = 0;
  int max_pp_steps_taken = 0;
  /// Cells that never reached vth within the step budget (raw errors the
  /// ECC must absorb).
  int unconverged_cells = 0;
};

/// Write-ahead journal of an in-flight hide session.  The hiding software
/// keeps it in its own durable storage (it is tiny); after a power cut it
/// tells hide() where the interrupted embed stopped so the session resumes
/// instead of restarting — and, because every derivation is keyed and
/// deterministic, re-running an already-embedded page is harmless (partial
/// programming only tops up cells still below the threshold).
struct HideJournal {
  std::uint32_t block = 0;
  std::size_t payload_bytes = 0;
  /// SHA-256 of the payload — guards against resuming with different data,
  /// which would splice two half-embedded frames together.
  crypto::Digest256 payload_digest{};
  /// Hidden pages whose Algorithm-1 loop fully completed.
  std::uint32_t pages_completed = 0;
  /// Steps already taken inside the page being embedded when the journal
  /// was last advanced (audit trail; resume re-runs the page from step 0).
  int steps_in_current_page = 0;
  bool complete = false;

  /// True when this journal describes an interrupted hide of exactly this
  /// payload into exactly this block.
  [[nodiscard]] bool matches(std::uint32_t for_block,
                             std::span<const std::uint8_t> payload) const;
};

class VthiCodec {
 public:
  VthiCodec(nand::FlashChip& chip, const crypto::HidingKey& key,
            VthiConfig config = VthiConfig::production());

  [[nodiscard]] const VthiConfig& config() const noexcept { return config_; }
  [[nodiscard]] VthiChannel& channel() noexcept { return channel_; }

  /// Pages of a block that carry hidden data under the configured interval.
  [[nodiscard]] std::vector<std::uint32_t> hidden_pages() const;

  /// Hidden payload capacity of one block, after ECC parity, MAC and
  /// framing overhead.
  [[nodiscard]] std::size_t capacity_bytes() const;

  /// Fraction of hidden bits spent on ECC parity (the §6.3/§8 overhead
  /// figure: ~5% at the production config's BER, ~14% at the enhanced one).
  [[nodiscard]] double ecc_overhead() const;

  /// Embed `payload` into the public data already present in `block`.
  util::Result<HideReport> hide(std::uint32_t block,
                                std::span<const std::uint8_t> payload);

  /// hide() with power-loss protection: progress is journaled into
  /// `journal` before each embed step.  Pass a journal recovered after a
  /// power cut (same block, same payload) to resume the interrupted
  /// session; pass a fresh journal to start one.  On success the journal
  /// is marked complete.
  util::Result<HideReport> hide(std::uint32_t block,
                                std::span<const std::uint8_t> payload,
                                HideJournal* journal);

  /// Recover and authenticate the hidden payload of `block`.  When
  /// `corrected_bits` is non-null it receives the number of raw channel
  /// errors the ECC repaired — the health metric a refresh policy watches.
  /// On decode failure the hidden reference is shifted and the block
  /// re-read, up to config().max_read_retries times.
  util::Result<std::vector<std::uint8_t>> reveal(std::uint32_t block,
                                                 int* corrected_bits = nullptr);

  /// Destroy hidden data instantly by erasing the block (the paper's
  /// "almost instantaneous" panic path; public data dies with it).
  util::Status erase_hidden(std::uint32_t block);

  /// Re-embed a previously revealed payload into a freshly written block —
  /// the §5.1 migration path used when the FTL moves the public pages that
  /// carried the hidden data.
  util::Result<HideReport> reembed(std::uint32_t new_block,
                                   std::span<const std::uint8_t> payload) {
    return hide(new_block, payload);
  }

  /// Refresh hidden data in place (§8 "Reliability": "re-writing
  /// (refreshing) hidden data every several months ... can significantly
  /// improve retention").  Reveals the payload (ECC repairs any
  /// retention-leaked bits) and re-runs the embedding, which re-charges
  /// exactly the hidden-'0' cells that slipped below the threshold.
  /// Public data is untouched.
  util::Result<HideReport> refresh(std::uint32_t block);

  // ---- Batch entry points (stash::par) -----------------------------------
  // Blocks are independent hiding containers, so a batch fans out one pool
  // task per distinct block; requests naming the same block run
  // sequentially in request order.  Both calls follow the util::BatchResult
  // convention (stash/util/batch.hpp): result i corresponds to request i,
  // and results are bit-identical for any thread count.

  struct BlockHideRequest {
    std::uint32_t block = 0;
    std::vector<std::uint8_t> payload;
  };
  util::BatchResult<HideReport> hide_batch(
      std::span<const BlockHideRequest> requests, par::ThreadPool& pool);

  /// Reveal many blocks; when `corrected_bits` is non-null it receives one
  /// entry per request (ECC-repaired bit count, 0 on failed reveals).
  util::BatchResult<std::vector<std::uint8_t>> reveal_batch(
      std::span<const std::uint32_t> blocks, par::ThreadPool& pool,
      std::vector<int>* corrected_bits = nullptr);

  /// §6.3's capacity rule: the number of hidden bits per page must stay
  /// below the natural population of eligible cells already above the
  /// threshold ("we verified that the total number of cells in the range
  /// is larger than the total number of hidden bits"), or the voltage
  /// distribution acquires a telltale surplus.  Returns the recommended
  /// per-page budget for this block: safety_factor * the minimum census
  /// across the block's hidden pages (the paper measured >= 700 and chose
  /// 512 as the cap, then 256 conservatively — a factor near 0.5).
  util::Result<std::uint32_t> recommended_bits_per_page(
      std::uint32_t block, double safety_factor = 0.5);

 private:
  struct Layout {
    std::uint32_t pages_used = 0;
    std::size_t total_bits = 0;     // hidden bits across the block
    std::uint32_t codewords = 0;
    std::size_t parity_bits = 0;    // across all codewords
    std::size_t data_bits = 0;      // total_bits - parity_bits
  };
  [[nodiscard]] Layout layout() const;

  [[nodiscard]] std::vector<std::uint8_t> frame_payload(
      std::uint32_t block, std::span<const std::uint8_t> payload,
      std::size_t data_bits) const;

  /// One decode pass at a given hidden read reference.
  util::Result<std::vector<std::uint8_t>> reveal_at(std::uint32_t block,
                                                    double vth,
                                                    int* corrected_bits);

  nand::FlashChip* chip_;
  crypto::HidingKey key_;
  VthiConfig config_;
  VthiChannel channel_;
  std::unique_ptr<ecc::BchCode> bch_;  // null when ECC disabled
};

}  // namespace stash::vthi
