#pragma once
// Configuration for the VT-HI voltage-hiding scheme.  The defaults are the
// paper's production parameters determined in §6.3: hiding threshold at
// normalized level 34, 256 hidden bits per page, one physical page between
// hidden pages, and up to ten partial-programming steps.

#include <cstdint>

#include "stash/util/status.hpp"

namespace stash::vthi {

/// Parameters of the raw per-page voltage channel.
struct ChannelConfig {
  /// Hidden read reference: cells at or above this level decode as hidden
  /// '0', below as hidden '1' (paper Fig. 5; level 34 on the test chip).
  double vth = 34.0;
  /// Selection guard: only cells measured below this level are eligible to
  /// carry hidden bits.  Sits far above any erased-level voltage and far
  /// below any programmed-level voltage, so eligibility is stable across
  /// retention and wear — both encode and decode recover the identical
  /// cell list from a single voltage probe.
  double select_guard = 90.0;
  /// Maximum Algorithm-1 iterations (read + partial program).  Ten steps
  /// push the raw hidden BER below 1% (Fig. 6).
  int max_pp_steps = 10;
  /// Enhanced capacity mode (§8 "Improved Capacity"): use the
  /// controller-internal precise programming pass, a single step (m=1).
  bool use_fine_program = false;
  /// Fine-program target = vth + delta (with the given sigma), plus an
  /// exponential spread that shapes the hidden-'0' population like the
  /// natural voltage tail — the knob §6.2 says vendor firmware exposes
  /// ("the ability to control voltage targets and the width of voltage
  /// intervals").
  /// Defaults match the simulator's natural tail decay so the hidden-'0'
  /// population is shaped like a block that simply has a heavier tail.
  double fine_target_delta = 1.5;
  double fine_target_sigma = 1.2;
  double fine_target_tail = 7.5;
};

struct VthiConfig {
  ChannelConfig channel;
  /// Hidden bits embedded per hidden page (paper: 512 feasible, 256 chosen
  /// conservatively).
  std::uint32_t hidden_bits_per_page = 256;
  /// Physical pages skipped between hidden pages (paper: 1, which keeps the
  /// public-data BER inflation near 10% instead of 20% at interval 0).
  std::uint32_t page_interval = 1;
  /// BCH field degree; 0 disables ECC (raw channel experiments).
  int bch_m = 13;
  /// Correction capability per codeword; 0 = derive from raw_ber_estimate.
  int bch_t = 0;
  /// Raw channel BER the auto-picked t must cover with 3-sigma margin.
  /// The production channel measures ~1% (paper §8: 1.1-1.3%).
  double raw_ber_estimate = 0.015;
  /// Append an HMAC-SHA256 tag so reveal() can authenticate the payload
  /// (and cleanly reject a wrong key).
  bool with_mac = true;
  /// Refuse to hide into pages that hold no public data (hidden bits in a
  /// still-erased page would be destroyed by the later public program).
  bool require_programmed_pages = true;
  /// Read-retry budget: when a reveal fails to decode (ECC/MAC), re-read
  /// with the hidden reference shifted by ±read_retry_shift, widening
  /// exponentially (+s, -s, +2s, -2s, ...) — the standard NAND read-retry
  /// loop applied to the hidden threshold.  0 disables retries.
  int max_read_retries = 4;
  /// Initial reference shift of the retry ladder, in normalized levels.
  double read_retry_shift = 1.0;

  /// Uniform config contract (see FtlConfig::validate): checked by the
  /// VthiCodec/VthiChannel construction entry points, which throw
  /// std::invalid_argument on a non-OK status.
  [[nodiscard]] util::Status validate() const {
    using util::ErrorCode;
    using util::Status;
    if (!(channel.vth > 0.0) || channel.vth >= 255.0) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: channel.vth must be in (0, 255)"};
    }
    if (!(channel.select_guard > channel.vth) || channel.select_guard > 255.0) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: select_guard must be in (vth, 255]"};
    }
    if (channel.max_pp_steps < 1) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: max_pp_steps must be >= 1"};
    }
    if (hidden_bits_per_page == 0) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: hidden_bits_per_page must be > 0"};
    }
    if (bch_m != 0 && (bch_m < 2 || bch_m > 16)) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: bch_m must be 0 (ECC off) or in [2, 16]"};
    }
    if (bch_t < 0) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: bch_t must be >= 0"};
    }
    if (!(raw_ber_estimate >= 0.0) || raw_ber_estimate >= 0.5) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: raw_ber_estimate must be in [0, 0.5)"};
    }
    if (max_read_retries < 0 || !(read_retry_shift >= 0.0)) {
      return Status{ErrorCode::kInvalidArgument,
                    "VthiConfig: read-retry parameters must be non-negative"};
    }
    return Status::ok();
  }

  /// §6.3 production configuration (the paper's Table 1 / Fig. 10 setup).
  [[nodiscard]] static VthiConfig production() noexcept { return {}; }

  /// §8 enhanced configuration: 10x hidden bits per page, one precise
  /// programming step, lowered threshold.  On the paper's chip the lowered
  /// threshold was level 15; our calibrated simulator distribution puts the
  /// equivalent operating point at level 28 (see DESIGN.md §4).
  [[nodiscard]] static VthiConfig enhanced() noexcept {
    VthiConfig c;
    c.channel.vth = 30.0;
    c.channel.max_pp_steps = 1;
    c.channel.use_fine_program = true;
    c.hidden_bits_per_page = 2560;
    c.raw_ber_estimate = 0.025;  // enhanced channel measures ~2% (paper §8)
    return c;
  }
};

}  // namespace stash::vthi
