#pragma once
// The raw VT-HI voltage channel: keyed cell selection plus the Algorithm-1
// embed loop and single-probe extraction.  No cryptography or ECC here —
// that lives in VthiCodec; benches drive this layer directly to measure raw
// channel BER (Figs. 6 and 7).

#include <cstdint>
#include <span>
#include <vector>

#include "stash/crypto/drbg.hpp"
#include "stash/nand/chip.hpp"
#include "stash/par/pool.hpp"
#include "stash/util/status.hpp"
#include "stash/vthi/config.hpp"

namespace stash::vthi {

using util::Result;
using util::Status;

/// An in-progress per-page embedding: the selected cells and the bits they
/// must carry.  Obtained from VthiChannel::begin(); advance with step().
struct EmbedSession {
  std::uint32_t block = 0;
  std::uint32_t page = 0;
  std::vector<std::uint32_t> cells;   // selected cells, one per hidden bit
  std::vector<std::uint8_t> bits;     // intended hidden bits
  int steps_taken = 0;
  bool converged = false;
};

class VthiChannel {
 public:
  VthiChannel(nand::FlashChip& chip,
              std::array<std::uint8_t, 32> selection_key,
              ChannelConfig config = {});

  [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }

  /// Deterministically select `count` eligible cells for (block, page).
  /// Costs one voltage probe.  Fails with kNoSpace if the page lacks
  /// eligible cells.
  Result<std::vector<std::uint32_t>> select_cells(std::uint32_t block,
                                                  std::uint32_t page,
                                                  std::uint32_t count);

  /// Start an embedding session: selects cells for `bits` and performs no
  /// programming yet.
  Result<EmbedSession> begin(std::uint32_t block, std::uint32_t page,
                             std::span<const std::uint8_t> bits);

  /// One Algorithm-1 iteration: probe the page, partially program every
  /// hidden-'0' cell still below vth.  Returns the number of cells still
  /// below vth after the step (0 = converged).  With use_fine_program the
  /// single step uses the precise controller pass instead.
  Result<int> step(EmbedSession& session);

  /// Full Algorithm-1 loop: begin() + up to max_pp_steps step()s.
  Result<EmbedSession> embed(std::uint32_t block, std::uint32_t page,
                             std::span<const std::uint8_t> bits);

  /// Recover `count` hidden bits from a page with a single voltage probe:
  /// the probe yields both the eligible-cell list and, for each selected
  /// cell, the hidden bit (v >= vth -> '0').
  Result<std::vector<std::uint8_t>> extract(std::uint32_t block,
                                            std::uint32_t page,
                                            std::uint32_t count);

  /// extract() with an explicit hidden read reference — the read-retry
  /// path: a shifted vth re-slices the same voltage population exactly the
  /// way a vendor read-reference shift re-slices a real read.
  Result<std::vector<std::uint8_t>> extract_at(std::uint32_t block,
                                               std::uint32_t page,
                                               std::uint32_t count,
                                               double vth);

  /// §6.3 census: number of eligible cells naturally at or above vth (the
  /// paper's "700 cells per page" bound that caps hidden bits per page).
  Result<std::size_t> natural_above_threshold(std::uint32_t block,
                                              std::uint32_t page);

  // ---- Batch entry points (stash::par) -----------------------------------
  // Requests are grouped by block; distinct blocks embed/extract in
  // parallel on the pool while same-block pages run sequentially in request
  // order, so results are bit-identical for any thread count (FlashChip's
  // per-block noise streams make the block groups order-free).  Result i
  // always corresponds to request i.

  struct PageEmbedRequest {
    std::uint32_t block = 0;
    std::uint32_t page = 0;
    std::vector<std::uint8_t> bits;
  };
  std::vector<Result<EmbedSession>> embed_batch(
      std::span<const PageEmbedRequest> requests, par::ThreadPool& pool);

  struct PageExtractRequest {
    std::uint32_t block = 0;
    std::uint32_t page = 0;
    std::uint32_t count = 0;
  };
  std::vector<Result<std::vector<std::uint8_t>>> extract_batch(
      std::span<const PageExtractRequest> requests, par::ThreadPool& pool);

 private:
  /// Shared selection walk over a probed voltage map.
  [[nodiscard]] std::vector<std::uint32_t> select_from_voltages(
      std::uint32_t block, std::uint32_t page, std::uint32_t count,
      const std::vector<int>& volts) const;

  nand::FlashChip* chip_;
  std::array<std::uint8_t, 32> selection_key_;
  ChannelConfig config_;
};

}  // namespace stash::vthi
