#include "stash/vthi/channel.hpp"

#include <optional>
#include <string>
#include <unordered_map>

#include "stash/telemetry/metrics.hpp"
#include "stash/trace/trace.hpp"

namespace stash::vthi {

using util::ErrorCode;

namespace {

struct ChannelTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& embed_sessions = reg.counter("vthi.embed_sessions");
  telemetry::Counter& embed_steps = reg.counter("vthi.embed_steps");
  telemetry::Counter& extracts = reg.counter("vthi.extracts");
  telemetry::Counter& select_shortfalls = reg.counter("vthi.select_shortfalls");
  telemetry::LatencyHistogram& embed_step_ns =
      reg.histogram("vthi.embed_step_ns");
  telemetry::LatencyHistogram& embed_ns = reg.histogram("vthi.embed_ns");
};

ChannelTelemetry& channel_telemetry() {
  static ChannelTelemetry t;
  return t;
}

}  // namespace

VthiChannel::VthiChannel(nand::FlashChip& chip,
                         std::array<std::uint8_t, 32> selection_key,
                         ChannelConfig config)
    : chip_(&chip), selection_key_(selection_key), config_(config) {}

std::vector<std::uint32_t> VthiChannel::select_from_voltages(
    std::uint32_t block, std::uint32_t page, std::uint32_t count,
    const std::vector<int>& volts) const {
  // Keyed, page-personalized permutation of the whole cell range.  A cell
  // is eligible iff it currently measures below the selection guard, i.e.
  // it is an erased-level ("non-programmed") cell.  Eligibility is stable
  // across retention and partial programming, so the decoder re-derives the
  // identical list from its own probe.
  //
  // The permutation is an incremental keyed Fisher-Yates shuffle: position i
  // costs exactly one DRBG draw, so the walk needs at most `cells` draws
  // total.  (The previous rejection walk redrew already-seen cells without
  // making progress, degenerating into a coupon-collector tail — O(n log n)
  // draws expected, unbounded worst case — on near-full pages.)  Encoder and
  // decoder share this derivation, so both sides see the identical prefix.
  const std::string personalization =
      "vt-hi/b" + std::to_string(block) + "/p" + std::to_string(page);
  crypto::Sha256Drbg drbg(selection_key_, personalization);

  const auto cells = static_cast<std::uint32_t>(volts.size());
  std::vector<std::uint32_t> order(cells);
  for (std::uint32_t i = 0; i < cells; ++i) order[i] = i;
  std::vector<std::uint32_t> chosen;
  chosen.reserve(count);
  for (std::uint32_t i = 0; i < cells && chosen.size() < count; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(drbg.below(cells - i));
    std::swap(order[i], order[j]);
    const std::uint32_t c = order[i];
    if (static_cast<double>(volts[c]) < config_.select_guard) {
      chosen.push_back(c);
    }
  }
  return chosen;
}

Result<std::vector<std::uint32_t>> VthiChannel::select_cells(
    std::uint32_t block, std::uint32_t page, std::uint32_t count) {
  const auto volts = chip_->probe_voltages(block, page);
  if (volts.empty()) {
    return Status{ErrorCode::kOutOfBounds, "bad page address"};
  }
  auto chosen = select_from_voltages(block, page, count, volts);
  if (chosen.size() < count) {
    channel_telemetry().select_shortfalls.inc();
    return Status{ErrorCode::kNoSpace, "not enough eligible cells in page"};
  }
  return chosen;
}

Result<EmbedSession> VthiChannel::begin(std::uint32_t block,
                                        std::uint32_t page,
                                        std::span<const std::uint8_t> bits) {
  auto cells = select_cells(block, page, static_cast<std::uint32_t>(bits.size()));
  if (!cells.is_ok()) return cells.status();
  channel_telemetry().embed_sessions.inc();
  EmbedSession session;
  session.block = block;
  session.page = page;
  session.cells = std::move(cells).take();
  session.bits.assign(bits.begin(), bits.end());
  return session;
}

Result<int> VthiChannel::step(EmbedSession& session) {
  auto& tel = channel_telemetry();
  tel.embed_steps.inc();
  telemetry::ScopedTimer timer(tel.embed_step_ns);
  // One Algorithm-1 round, one read + (at most) one program: probe the
  // page, then partially program every hidden-'0' cell still below vth.
  // Returns the number of cells that were below vth at probe time; 0 means
  // the previous rounds already converged and nothing was programmed.
  const auto volts = chip_->probe_voltages(session.block, session.page);
  if (volts.empty()) {
    return Status{ErrorCode::kOutOfBounds, "bad page address"};
  }
  std::vector<std::uint32_t> pending;
  for (std::size_t i = 0; i < session.cells.size(); ++i) {
    if ((session.bits[i] & 1) == 0 &&
        static_cast<double>(volts[session.cells[i]]) < config_.vth) {
      pending.push_back(session.cells[i]);
    }
  }
  if (pending.empty()) {
    session.converged = true;
    return 0;
  }

  Status programmed;
  if (config_.use_fine_program) {
    programmed = chip_->fine_program(session.block, session.page, pending,
                                     config_.vth + config_.fine_target_delta,
                                     config_.fine_target_sigma,
                                     config_.fine_target_tail);
  } else {
    programmed = chip_->partial_program(session.block, session.page, pending);
  }
  if (!programmed.is_ok()) return programmed;
  ++session.steps_taken;
  return static_cast<int>(pending.size());
}

Result<EmbedSession> VthiChannel::embed(std::uint32_t block,
                                        std::uint32_t page,
                                        std::span<const std::uint8_t> bits) {
  telemetry::ScopedTimer timer(channel_telemetry().embed_ns);
  trace::ScopedSpan span(trace::Stage::kVthiEmbed, trace::Op::kEmbed,
                         (static_cast<std::uint64_t>(block) << 32) | page,
                         bits.size() / 8);
  auto begun = begin(block, page, bits);
  if (!begun.is_ok()) {
    span.set_status(static_cast<std::uint8_t>(begun.status().code()));
    return begun.status();
  }
  EmbedSession session = std::move(begun).take();
  for (int s = 0; s < config_.max_pp_steps && !session.converged; ++s) {
    auto stepped = step(session);
    if (!stepped.is_ok()) {
      span.set_status(static_cast<std::uint8_t>(stepped.status().code()));
      return stepped.status();
    }
  }
  return session;
}

Result<std::vector<std::uint8_t>> VthiChannel::extract(std::uint32_t block,
                                                       std::uint32_t page,
                                                       std::uint32_t count) {
  return extract_at(block, page, count, config_.vth);
}

Result<std::vector<std::uint8_t>> VthiChannel::extract_at(std::uint32_t block,
                                                          std::uint32_t page,
                                                          std::uint32_t count,
                                                          double vth) {
  channel_telemetry().extracts.inc();
  trace::ScopedSpan span(trace::Stage::kVthiExtract, trace::Op::kExtract,
                         (static_cast<std::uint64_t>(block) << 32) | page,
                         count / 8);
  // Single probe: yields the eligible-cell list and every hidden bit.
  const auto volts = chip_->probe_voltages(block, page);
  if (volts.empty()) {
    span.set_status(
        static_cast<std::uint8_t>(util::ErrorCode::kOutOfBounds));
    return Status{ErrorCode::kOutOfBounds, "bad page address"};
  }
  const auto chosen = select_from_voltages(block, page, count, volts);
  if (chosen.size() < count) {
    span.set_status(static_cast<std::uint8_t>(util::ErrorCode::kNoSpace));
    return Status{ErrorCode::kNoSpace, "not enough eligible cells in page"};
  }
  std::vector<std::uint8_t> bits(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    bits[i] = static_cast<double>(volts[chosen[i]]) >= vth ? 0 : 1;
  }
  return bits;
}

namespace {

/// Request indices grouped by block in first-appearance order, preserving
/// submission order inside each group.  First-appearance ordering (rather
/// than sorting by block id) keeps the result layout independent of how the
/// caller numbered its blocks.
template <typename Req>
std::vector<std::vector<std::size_t>> group_by_block(
    std::span<const Req> requests) {
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::uint32_t, std::size_t> index_of;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto [it, fresh] = index_of.try_emplace(requests[i].block, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

}  // namespace

std::vector<Result<EmbedSession>> VthiChannel::embed_batch(
    std::span<const PageEmbedRequest> requests, par::ThreadPool& pool) {
  // Result<T> has no default state, so build into optionals and unwrap once
  // every slot is filled.
  std::vector<std::optional<Result<EmbedSession>>> slots(requests.size());
  const auto groups = group_by_block(requests);
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    for (const std::size_t i : groups[g]) {
      const PageEmbedRequest& req = requests[i];
      slots[i].emplace(embed(req.block, req.page, req.bits));
    }
  });
  std::vector<Result<EmbedSession>> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

std::vector<Result<std::vector<std::uint8_t>>> VthiChannel::extract_batch(
    std::span<const PageExtractRequest> requests, par::ThreadPool& pool) {
  std::vector<std::optional<Result<std::vector<std::uint8_t>>>> slots(
      requests.size());
  const auto groups = group_by_block(requests);
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    for (const std::size_t i : groups[g]) {
      const PageExtractRequest& req = requests[i];
      slots[i].emplace(extract(req.block, req.page, req.count));
    }
  });
  std::vector<Result<std::vector<std::uint8_t>>> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

Result<std::size_t> VthiChannel::natural_above_threshold(std::uint32_t block,
                                                         std::uint32_t page) {
  const auto volts = chip_->probe_voltages(block, page);
  if (volts.empty()) {
    return Status{ErrorCode::kOutOfBounds, "bad page address"};
  }
  std::size_t count = 0;
  for (int v : volts) {
    const auto vd = static_cast<double>(v);
    if (vd >= config_.vth && vd < config_.select_guard) ++count;
  }
  return count;
}

}  // namespace stash::vthi
