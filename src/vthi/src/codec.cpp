#include "stash/vthi/codec.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <optional>
#include <unordered_map>

#include "stash/crypto/chacha20.hpp"
#include "stash/telemetry/metrics.hpp"
#include "stash/trace/trace.hpp"
#include "stash/util/bitvec.hpp"

namespace stash::vthi {

using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

constexpr std::size_t kLenBytes = 4;
constexpr std::size_t kMacBytes = 16;

std::array<std::uint8_t, 12> block_nonce(std::uint32_t block) {
  std::array<std::uint8_t, 12> nonce{'v', 't', 'h', 'i', 0, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    nonce[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(block >> (8 * i));
  }
  return nonce;
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace

VthiCodec::VthiCodec(nand::FlashChip& chip, const crypto::HidingKey& key,
                     VthiConfig config)
    : chip_(&chip),
      key_(key),
      config_(config),
      channel_(chip, key.selection_key(), config.channel) {
  if (const Status valid = config_.validate(); !valid.is_ok()) {
    throw std::invalid_argument(valid.to_string());
  }
  if (config_.bch_m > 0) {
    int t = config_.bch_t;
    if (t == 0) {
      // Size t for one codeword's share of the block payload.
      const std::size_t n = (1ull << config_.bch_m) - 1;
      const Layout lay = [&] {
        Layout l;
        const auto& geom = chip_->geometry();
        const std::uint32_t stride = config_.page_interval + 1;
        l.pages_used = (geom.pages_per_block + stride - 1) / stride;
        l.total_bits = static_cast<std::size_t>(l.pages_used) *
                       config_.hidden_bits_per_page;
        return l;
      }();
      const std::size_t codewords = (lay.total_bits + n - 1) / n;
      const std::size_t per_cw =
          (lay.total_bits + codewords - 1) / std::max<std::size_t>(1, codewords);
      t = ecc::BchCode::pick_t_for_codeword(config_.bch_m, per_cw,
                                            config_.raw_ber_estimate);
      if (t == 0) t = 1;
    }
    bch_ = std::make_unique<ecc::BchCode>(config_.bch_m, t);
  }
}

std::vector<std::uint32_t> VthiCodec::hidden_pages() const {
  std::vector<std::uint32_t> pages;
  const std::uint32_t stride = config_.page_interval + 1;
  for (std::uint32_t p = 0; p < chip_->geometry().pages_per_block; p += stride) {
    pages.push_back(p);
  }
  return pages;
}

VthiCodec::Layout VthiCodec::layout() const {
  Layout lay;
  const std::uint32_t stride = config_.page_interval + 1;
  lay.pages_used = (chip_->geometry().pages_per_block + stride - 1) / stride;
  lay.total_bits =
      static_cast<std::size_t>(lay.pages_used) * config_.hidden_bits_per_page;
  if (bch_) {
    const std::size_t n = bch_->n();
    lay.codewords = static_cast<std::uint32_t>((lay.total_bits + n - 1) / n);
    lay.parity_bits = static_cast<std::size_t>(lay.codewords) *
                      bch_->parity_bits();
  } else {
    lay.codewords = 0;
    lay.parity_bits = 0;
  }
  lay.data_bits =
      lay.total_bits > lay.parity_bits ? lay.total_bits - lay.parity_bits : 0;
  return lay;
}

std::size_t VthiCodec::capacity_bytes() const {
  const Layout lay = layout();
  const std::size_t data_bytes = lay.data_bits / 8;
  const std::size_t overhead = kLenBytes + (config_.with_mac ? kMacBytes : 0);
  return data_bytes > overhead ? data_bytes - overhead : 0;
}

double VthiCodec::ecc_overhead() const {
  const Layout lay = layout();
  return lay.total_bits
             ? static_cast<double>(lay.parity_bits) /
                   static_cast<double>(lay.total_bits)
             : 0.0;
}

std::vector<std::uint8_t> VthiCodec::frame_payload(
    std::uint32_t block, std::span<const std::uint8_t> payload,
    std::size_t data_bits) const {
  // Plaintext: [len u32 LE][payload]; encrypted as one ChaCha20 stream.
  std::vector<std::uint8_t> frame(kLenBytes + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
  std::copy(payload.begin(), payload.end(), frame.begin() + kLenBytes);

  const auto cipher_key = key_.cipher_key();
  const auto nonce = block_nonce(block);
  crypto::ChaCha20 cipher(cipher_key, nonce);
  cipher.apply(frame);

  if (config_.with_mac) {
    std::vector<std::uint8_t> mac_input(4);
    for (int i = 0; i < 4; ++i) {
      mac_input[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(block >> (8 * i));
    }
    mac_input.insert(mac_input.end(), frame.begin(), frame.end());
    const auto tag = crypto::hmac_sha256(key_.mac_key(), mac_input);
    frame.insert(frame.end(), tag.begin(), tag.begin() + kMacBytes);
  }

  frame.resize(data_bits / 8 + ((data_bits % 8) ? 1 : 0), 0);
  return frame;
}

namespace {

struct CodecTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& hides = reg.counter("vthi.hides");
  telemetry::Counter& reveals = reg.counter("vthi.reveals");
  telemetry::Counter& hide_resumes = reg.counter("vthi.hide_resumes");
  telemetry::Counter& read_retries = reg.counter("vthi.read_retries");
  telemetry::Counter& read_retry_recoveries =
      reg.counter("vthi.read_retry_recoveries");
  telemetry::LatencyHistogram& hide_ns = reg.histogram("vthi.hide_ns");
  telemetry::LatencyHistogram& reveal_ns = reg.histogram("vthi.reveal_ns");
  telemetry::LatencyHistogram& retries_per_reveal =
      reg.histogram("vthi.retries_per_reveal");
};

CodecTelemetry& codec_telemetry() {
  static CodecTelemetry t;
  return t;
}

}  // namespace

bool HideJournal::matches(std::uint32_t for_block,
                          std::span<const std::uint8_t> payload) const {
  return block == for_block && payload_bytes == payload.size() &&
         payload_digest == crypto::Sha256::hash(payload);
}

Result<HideReport> VthiCodec::hide(std::uint32_t block,
                                   std::span<const std::uint8_t> payload) {
  return hide(block, payload, nullptr);
}

Result<HideReport> VthiCodec::hide(std::uint32_t block,
                                   std::span<const std::uint8_t> payload,
                                   HideJournal* journal) {
  codec_telemetry().hides.inc();
  telemetry::ScopedTimer timer(codec_telemetry().hide_ns);
  const Layout lay = layout();
  const std::size_t capacity = capacity_bytes();
  if (capacity == 0) {
    return Status{ErrorCode::kNoSpace,
                  "hidden layout too small for framing + ECC"};
  }
  if (payload.size() > capacity) {
    return Status{ErrorCode::kNoSpace,
                  "payload exceeds hidden capacity of one block"};
  }
  if (config_.require_programmed_pages) {
    for (std::uint32_t p : hidden_pages()) {
      if (chip_->page_state(block, p) != nand::PageState::kProgrammed) {
        return Status{ErrorCode::kInvalidArgument,
                      "hidden pages must hold public data before hiding"};
      }
    }
  }

  // Frame, then slice into codeword payloads and BCH-encode.
  const auto frame = frame_payload(block, payload, lay.data_bits);
  auto data_bits = util::bytes_to_bits(frame);
  data_bits.resize(lay.data_bits, 0);

  std::vector<std::uint8_t> coded;
  coded.reserve(lay.total_bits);
  if (bch_) {
    const std::uint32_t cw = lay.codewords;
    const std::size_t base = lay.data_bits / cw;
    const std::size_t rem = lay.data_bits % cw;
    std::size_t offset = 0;
    for (std::uint32_t c = 0; c < cw; ++c) {
      const std::size_t take = base + (c < rem ? 1 : 0);
      const std::span<const std::uint8_t> chunk(data_bits.data() + offset, take);
      const auto codeword = bch_->encode(chunk);
      coded.insert(coded.end(), codeword.begin(), codeword.end());
      offset += take;
    }
  } else {
    coded = data_bits;
  }
  if (coded.size() != lay.total_bits) {
    return Status{ErrorCode::kCorrupted, "internal layout mismatch"};
  }

  // Interleave coded bits round-robin across hidden pages so a page-local
  // burst spreads over every codeword.
  const auto pages = hidden_pages();
  std::vector<std::vector<std::uint8_t>> page_bits(
      pages.size(), std::vector<std::uint8_t>(config_.hidden_bits_per_page));
  for (std::size_t i = 0; i < coded.size(); ++i) {
    page_bits[i % pages.size()][i / pages.size()] = coded[i];
  }

  // Resume an interrupted session when the journal matches; pages whose
  // embed loop completed are skipped (their cells already sit above vth).
  // A stale or foreign journal is reinitialized — restart, not resume.
  std::size_t start_page = 0;
  if (journal) {
    if (journal->matches(block, payload) && !journal->complete) {
      start_page = std::min<std::size_t>(journal->pages_completed, pages.size());
      if (start_page > 0 || journal->steps_in_current_page > 0) {
        codec_telemetry().hide_resumes.inc();
      }
    } else {
      *journal = HideJournal{};
      journal->block = block;
      journal->payload_bytes = payload.size();
      journal->payload_digest = crypto::Sha256::hash(payload);
    }
  }

  HideReport report;
  report.pages_used = lay.pages_used;
  report.codewords = lay.codewords;
  report.payload_bytes = payload.size();
  report.capacity_bytes = capacity;
  for (std::size_t pi = start_page; pi < pages.size(); ++pi) {
    // Inline Algorithm-1 loop (rather than channel_.embed) so the journal
    // advances before every step: a power cut between any two bus
    // operations leaves a journal that points at the exact page to redo.
    auto begun = channel_.begin(block, pages[pi], page_bits[pi]);
    if (!begun.is_ok()) return begun.status();
    EmbedSession session = std::move(begun).take();
    for (int s = 0; s < config_.channel.max_pp_steps && !session.converged;
         ++s) {
      if (journal) {
        journal->pages_completed = static_cast<std::uint32_t>(pi);
        journal->steps_in_current_page = s;
      }
      auto stepped = channel_.step(session);
      if (!stepped.is_ok()) return stepped.status();
    }
    if (journal) {
      journal->pages_completed = static_cast<std::uint32_t>(pi) + 1;
      journal->steps_in_current_page = 0;
    }
    report.max_pp_steps_taken =
        std::max(report.max_pp_steps_taken, session.steps_taken);
    // Count residual raw errors on this page (one extra probe).
    auto readback = channel_.extract(
        block, pages[pi], config_.hidden_bits_per_page);
    if (readback.is_ok()) {
      const auto& got = readback.value();
      for (std::size_t i = 0; i < got.size(); ++i) {
        report.unconverged_cells += (got[i] ^ page_bits[pi][i]) & 1;
      }
    }
  }
  if (journal) journal->complete = true;
  return report;
}

Result<std::vector<std::uint8_t>> VthiCodec::reveal_at(std::uint32_t block,
                                                       double vth,
                                                       int* corrected_bits) {
  if (corrected_bits) *corrected_bits = 0;
  const Layout lay = layout();
  const auto pages = hidden_pages();

  // Gather per-page hidden bits (one probe per page) and de-interleave.
  std::vector<std::vector<std::uint8_t>> page_bits;
  page_bits.reserve(pages.size());
  for (std::uint32_t p : pages) {
    auto bits = channel_.extract_at(block, p, config_.hidden_bits_per_page,
                                    vth);
    if (!bits.is_ok()) return bits.status();
    page_bits.push_back(std::move(bits).take());
  }
  std::vector<std::uint8_t> coded(lay.total_bits);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    coded[i] = page_bits[i % pages.size()][i / pages.size()];
  }

  // BCH-decode the block's codewords in one batched sweep: the kernel
  // scratch and syndrome tables are walked once for all of them.
  std::vector<std::uint8_t> data_bits;
  data_bits.reserve(lay.data_bits);
  bool uncorrectable = false;
  if (bch_) {
    const std::uint32_t cw = lay.codewords;
    const std::size_t base = lay.data_bits / cw;
    const std::size_t rem = lay.data_bits % cw;
    std::vector<std::span<const std::uint8_t>> codewords;
    std::vector<std::size_t> data_lens;
    codewords.reserve(cw);
    data_lens.reserve(cw);
    std::size_t offset = 0;
    for (std::uint32_t c = 0; c < cw; ++c) {
      const std::size_t data_len = base + (c < rem ? 1 : 0);
      const std::size_t cw_len = data_len + bch_->parity_bits();
      codewords.emplace_back(coded.data() + offset, cw_len);
      data_lens.push_back(data_len);
      offset += cw_len;
    }
    std::vector<ecc::BchCode::DecodeResult> decoded;
    {
      trace::ScopedSpan span(trace::Stage::kEccDecode, trace::Op::kExtract,
                             block, (offset + 7) / 8);
      decoded = bch_->decode_batch(codewords);
    }
    for (std::uint32_t c = 0; c < cw; ++c) {
      if (decoded[c].ok) {
        if (corrected_bits) *corrected_bits += decoded[c].corrected;
        data_bits.insert(data_bits.end(), decoded[c].data_bits.begin(),
                         decoded[c].data_bits.end());
      } else {
        // Best effort: keep the raw systematic part; the MAC will tell us
        // whether it happened to survive.
        uncorrectable = true;
        data_bits.insert(data_bits.end(), codewords[c].begin(),
                         codewords[c].begin() +
                             static_cast<long>(data_lens[c]));
      }
    }
  } else {
    data_bits = coded;
  }

  const auto bytes = util::bits_to_bytes(
      std::span<const std::uint8_t>(data_bits.data(),
                                    data_bits.size() - data_bits.size() % 8));

  // Parse the frame: decrypt length, check bounds, verify MAC, decrypt.
  if (bytes.size() < kLenBytes + (config_.with_mac ? kMacBytes : 0)) {
    return Status{ErrorCode::kCorrupted, "frame too small"};
  }
  const auto cipher_key = key_.cipher_key();
  const auto nonce = block_nonce(block);

  std::vector<std::uint8_t> len_bytes(bytes.begin(), bytes.begin() + kLenBytes);
  crypto::ChaCha20 len_cipher(cipher_key, nonce);
  len_cipher.apply(len_bytes);
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | len_bytes[static_cast<std::size_t>(i)];
  }
  const std::size_t mac_off = kLenBytes + len;
  if (len > capacity_bytes() ||
      mac_off + (config_.with_mac ? kMacBytes : 0) > bytes.size()) {
    return Status{config_.with_mac ? ErrorCode::kAuthFailure
                                   : ErrorCode::kCorrupted,
                  "hidden frame length invalid (wrong key or data loss)"};
  }

  if (config_.with_mac) {
    std::vector<std::uint8_t> mac_input(4);
    for (int i = 0; i < 4; ++i) {
      mac_input[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(block >> (8 * i));
    }
    mac_input.insert(mac_input.end(), bytes.begin(),
                     bytes.begin() + static_cast<long>(mac_off));
    const auto tag = crypto::hmac_sha256(key_.mac_key(), mac_input);
    const std::span<const std::uint8_t> stored(bytes.data() + mac_off,
                                               kMacBytes);
    if (!constant_time_equal(stored,
                             std::span<const std::uint8_t>(tag.data(),
                                                           kMacBytes))) {
      return Status{ErrorCode::kAuthFailure,
                    "hidden payload failed authentication"};
    }
  } else if (uncorrectable) {
    return Status{ErrorCode::kUncorrectable,
                  "hidden payload exceeded ECC correction budget"};
  }

  std::vector<std::uint8_t> plaintext(bytes.begin(),
                                      bytes.begin() + static_cast<long>(mac_off));
  crypto::ChaCha20 cipher(cipher_key, nonce);
  cipher.apply(plaintext);
  return std::vector<std::uint8_t>(plaintext.begin() + kLenBytes,
                                   plaintext.end());
}

namespace {

/// Failures a shifted re-read can plausibly fix: decode/authentication
/// errors from marginal or glitched cells, and selection shortfalls from a
/// transiently jogged probe.  kOutOfBounds (bad address, dark device) is
/// not retryable.
bool read_retryable(ErrorCode code) noexcept {
  return code == ErrorCode::kUncorrectable || code == ErrorCode::kAuthFailure ||
         code == ErrorCode::kCorrupted || code == ErrorCode::kNoSpace;
}

}  // namespace

Result<std::vector<std::uint8_t>> VthiCodec::reveal(std::uint32_t block,
                                                    int* corrected_bits) {
  auto& tel = codec_telemetry();
  tel.reveals.inc();
  telemetry::ScopedTimer timer(tel.reveal_ns);

  auto result = reveal_at(block, config_.channel.vth, corrected_bits);
  if (result.is_ok() || config_.max_read_retries <= 0 ||
      !read_retryable(result.status().code())) {
    if (result.is_ok()) tel.retries_per_reveal.record(0);
    return result;
  }

  // Read-retry ladder: +s, -s, +2s, -2s, ... around the nominal reference,
  // doubling after each +/- pair (exponential widening).  Every rung does a
  // fresh set of probes, so transient glitches clear and drifted
  // populations get re-sliced at a friendlier reference.
  double magnitude = config_.read_retry_shift;
  for (int attempt = 1; attempt <= config_.max_read_retries; ++attempt) {
    tel.read_retries.inc();
    const double shift = (attempt % 2 == 1) ? magnitude : -magnitude;
    if (attempt % 2 == 0) magnitude *= 2.0;
    const double vth =
        std::clamp(config_.channel.vth + shift, 1.0,
                   config_.channel.select_guard - 1.0);
    auto retried = reveal_at(block, vth, corrected_bits);
    if (retried.is_ok()) {
      tel.read_retry_recoveries.inc();
      tel.retries_per_reveal.record(static_cast<std::uint64_t>(attempt));
      return retried;
    }
    if (!read_retryable(retried.status().code())) return retried;
    result = std::move(retried);
  }
  tel.retries_per_reveal.record(
      static_cast<std::uint64_t>(config_.max_read_retries));
  return result;
}

Status VthiCodec::erase_hidden(std::uint32_t block) {
  return chip_->erase_block(block);
}

Result<HideReport> VthiCodec::refresh(std::uint32_t block) {
  auto payload = reveal(block);
  if (!payload.is_ok()) return payload.status();
  // hide() regenerates the identical frame and coded bits (all derivation
  // is keyed and deterministic per block), so the embed pass only tops up
  // cells that leaked below the threshold.
  return hide(block, payload.value());
}

namespace {

/// Request indices grouped by block id in first-appearance order, keeping
/// submission order inside a group.  Even "read-only" reveals must group:
/// every read draws read-disturb noise from the block's RNG stream, so
/// same-block order has to stay deterministic.
std::vector<std::vector<std::size_t>> group_blocks(
    std::size_t n, const std::function<std::uint32_t(std::size_t)>& block_of) {
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::uint32_t, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, fresh] = index_of.try_emplace(block_of(i), groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

}  // namespace

std::vector<Result<HideReport>> VthiCodec::hide_batch(
    std::span<const BlockHideRequest> requests, par::ThreadPool& pool) {
  const auto groups = group_blocks(
      requests.size(), [&](std::size_t i) { return requests[i].block; });
  std::vector<std::optional<Result<HideReport>>> slots(requests.size());
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    for (const std::size_t i : groups[g]) {
      slots[i].emplace(hide(requests[i].block, requests[i].payload));
    }
  });
  std::vector<Result<HideReport>> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

std::vector<Result<std::vector<std::uint8_t>>> VthiCodec::reveal_batch(
    std::span<const std::uint32_t> blocks, par::ThreadPool& pool,
    std::vector<int>* corrected_bits) {
  const auto groups =
      group_blocks(blocks.size(), [&](std::size_t i) { return blocks[i]; });
  std::vector<std::optional<Result<std::vector<std::uint8_t>>>> slots(
      blocks.size());
  std::vector<int> corrected(blocks.size(), 0);
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    for (const std::size_t i : groups[g]) {
      slots[i].emplace(reveal(blocks[i], &corrected[i]));
    }
  });
  std::vector<Result<std::vector<std::uint8_t>>> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  if (corrected_bits != nullptr) *corrected_bits = std::move(corrected);
  return out;
}

Result<std::uint32_t> VthiCodec::recommended_bits_per_page(
    std::uint32_t block, double safety_factor) {
  std::size_t min_census = SIZE_MAX;
  for (std::uint32_t p : hidden_pages()) {
    auto census = channel_.natural_above_threshold(block, p);
    if (!census.is_ok()) return census.status();
    min_census = std::min(min_census, census.value());
  }
  if (min_census == SIZE_MAX) {
    return Status{util::ErrorCode::kInvalidArgument, "block has no hidden pages"};
  }
  return static_cast<std::uint32_t>(static_cast<double>(min_census) *
                                    safety_factor);
}

}  // namespace stash::vthi
