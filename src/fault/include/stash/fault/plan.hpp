#pragma once
// stash::fault — deterministic, seedable fault injection for the NAND stack.
//
// A FaultPlan is the concrete nand::FaultInjector the tests and benches
// attach to a FlashChip.  It schedules faults two ways:
//
//   * by operation index — "the 137th chip operation fails" / "power is cut
//     during the 52nd operation".  Operation indices are global across all
//     op classes, in issue order, so a schedule replays exactly against the
//     same workload;
//   * by address predicate or rate — "every program on block 9 fails"
//     (grown bad block), "1% of programs fail", "0.5% of reads glitch".
//
// Every random draw is a pure function of (seed, op index), never of wall
// clock or call-site state, so two plans with the same seed attached to the
// same workload fire the identical fault schedule — the property
// tests/fault_test.cpp locks down.  fired() returns the audit log of what
// actually fired.
//
// Power-cut model: when a power-cut point fires, the in-flight operation is
// truncated at its scheduled completed_fraction and the device goes dark —
// every subsequent operation reports kPowerLoss (programs/erases) or
// returns nothing (reads) until restore_power() simulates reboot.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "stash/nand/fault_injector.hpp"

namespace stash::fault {

enum class FaultKind : std::uint8_t {
  kProgramFail,
  kEraseFail,
  kReadFail,
  kPowerCut,
  kReadGlitch,
  kGrownBadBlock,
  kPredicate,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// One fault that actually fired, in firing order.
struct FiredFault {
  std::uint64_t op_index = 0;
  FaultKind kind = FaultKind::kProgramFail;
  nand::FaultOp op = nand::FaultOp::kProgram;
  std::uint32_t block = 0;
  std::uint32_t page = 0;

  bool operator==(const FiredFault&) const = default;
};

struct FaultStats {
  std::uint64_t ops_seen = 0;
  std::uint64_t program_fails = 0;
  std::uint64_t erase_fails = 0;
  std::uint64_t read_fails = 0;
  std::uint64_t power_cuts = 0;
  std::uint64_t read_glitches = 0;
  std::uint64_t bad_block_rejections = 0;
  std::uint64_t predicate_fails = 0;
  /// Operations rejected because the device was dark (post power cut).
  std::uint64_t dark_ops = 0;
};

class FaultPlan final : public nand::FaultInjector {
 public:
  /// Returns true when the operation should fail.
  using Predicate = std::function<bool(
      nand::FaultOp op, std::uint32_t block, std::uint32_t page)>;

  explicit FaultPlan(std::uint64_t seed);

  // ---- Schedule: by operation index --------------------------------------
  FaultPlan& fail_program_at(std::uint64_t op_index,
                             double completed_fraction = 0.5);
  FaultPlan& fail_erase_at(std::uint64_t op_index);
  FaultPlan& fail_read_at(std::uint64_t op_index);
  /// Cut power during operation `op_index`: the op applies only
  /// `completed_fraction` of its physical effect and the device goes dark.
  FaultPlan& power_cut_at(std::uint64_t op_index,
                          double completed_fraction = 0.0);

  // ---- Schedule: by rate / address ---------------------------------------
  /// Each program-class op fails with probability `rate` (deterministic in
  /// the op index).
  FaultPlan& fail_programs(double rate);
  FaultPlan& fail_erases(double rate);
  /// Each read returns with `bit_flip_rate` of its bits flipped (probe
  /// voltages get jogged), with probability `rate`.  Transient: the next
  /// read of the same page is clean.
  FaultPlan& glitch_reads(double rate, double bit_flip_rate = 2e-3);
  /// Mark a block grown-bad: every program/erase on it fails, persistently.
  FaultPlan& grow_bad_block(std::uint32_t block);
  /// Pin one cell's observed voltage to `level` (stuck-at defect): probes
  /// report `level`, reads report the corresponding bit.
  FaultPlan& stick_cell(std::uint32_t block, std::uint32_t page,
                        std::uint32_t cell, int level);
  /// Fail any operation the predicate matches (reported as kProgramFail /
  /// kEraseFail / empty read by class).
  FaultPlan& fail_when(Predicate predicate);

  // ---- Power state --------------------------------------------------------
  [[nodiscard]] bool powered() const noexcept { return powered_; }
  /// Go dark immediately (as if a scheduled cut fired between operations).
  void cut_power() noexcept { powered_ = false; }
  /// Reboot: subsequent operations execute normally again.
  void restore_power() noexcept { powered_ = true; }

  // ---- Introspection -------------------------------------------------------
  [[nodiscard]] std::uint64_t ops_seen() const noexcept {
    return stats_.ops_seen;
  }
  [[nodiscard]] const std::vector<FiredFault>& fired() const noexcept {
    return fired_;
  }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool is_grown_bad(std::uint32_t block) const {
    return bad_blocks_.contains(block);
  }

  // ---- nand::FaultInjector -------------------------------------------------
  nand::FaultDecision on_operation(nand::FaultOp op, std::uint32_t block,
                                   std::uint32_t page) override;
  void corrupt_read(std::uint32_t block, std::uint32_t page,
                    std::span<std::uint8_t> bits, double vref) override;
  void corrupt_probe(std::uint32_t block, std::uint32_t page,
                     std::span<int> volts) override;

 private:
  struct Scheduled {
    std::uint64_t op_index = 0;
    FaultKind kind = FaultKind::kProgramFail;
    double completed_fraction = 0.0;
  };
  struct StuckCell {
    std::uint32_t block = 0;
    std::uint32_t page = 0;
    std::uint32_t cell = 0;
    int level = 0;
  };

  void note_fired(std::uint64_t op_index, FaultKind kind, nand::FaultOp op,
                  std::uint32_t block, std::uint32_t page);
  [[nodiscard]] double draw(std::uint64_t salt,
                            std::uint64_t op_index) const noexcept;

  std::uint64_t seed_;
  bool powered_ = true;
  std::vector<Scheduled> scheduled_;
  double program_fail_rate_ = 0.0;
  double erase_fail_rate_ = 0.0;
  double read_glitch_rate_ = 0.0;
  double glitch_bit_flip_rate_ = 2e-3;
  std::unordered_set<std::uint32_t> bad_blocks_;
  std::vector<StuckCell> stuck_;
  std::vector<Predicate> predicates_;
  /// Op index of a glitch armed by on_operation, consumed by corrupt_*.
  std::optional<std::uint64_t> pending_glitch_;
  std::vector<FiredFault> fired_;
  FaultStats stats_;
};

}  // namespace stash::fault
