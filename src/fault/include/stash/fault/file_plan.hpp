#pragma once
// FileFaultPlan — the file-I/O fault domain of stash::fault.
//
// Mirrors FaultPlan's by-op-index discipline for the syscalls the snapshot
// store issues (store::FileOp: write / fsync / rename).  Indices are global
// across all file ops in issue order, so a schedule replays exactly against
// the same save: "tear the 3rd write after 117 bytes", "fail the fsync at
// index 7", "fail the commit rename".  Once any scheduled fault fires the
// plan goes dark — every subsequent file op fails with the same crash the
// way a dead process stops issuing syscalls — until restore() simulates the
// next incarnation.  That makes one plan usable for exactly one simulated
// crash, which is how the soak harness sweeps crash-mid-save over every
// write index of a save.
//
// Pure scheduling, no randomness: the interesting space (every syscall
// index x a few torn lengths) is small enough to sweep exhaustively, which
// is stronger than sampling it.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "stash/store/file_io.hpp"

namespace stash::fault {

/// One file fault that actually fired, in firing order.
struct FiredFileFault {
  std::uint64_t op_index = 0;
  store::FileOp op = store::FileOp::kWrite;
  std::string path;
  bool torn = false;
  std::size_t keep_bytes = 0;

  bool operator==(const FiredFileFault&) const = default;
};

struct FileFaultStats {
  std::uint64_t ops_seen = 0;
  std::uint64_t writes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t renames = 0;
  std::uint64_t faults_fired = 0;
  /// Ops rejected because the plan was already dark (crashed process).
  std::uint64_t dark_ops = 0;
};

class FileFaultPlan final : public store::FileFaultInjector {
 public:
  FileFaultPlan() = default;

  // ---- Schedule (by global file-op index) --------------------------------
  /// The op at `op_index` (if it is a write) persists only its first
  /// `keep_bytes` bytes, then the plan goes dark.
  FileFaultPlan& torn_write_at(std::uint64_t op_index, std::size_t keep_bytes);
  /// The op at `op_index` fails outright (nothing persisted), then dark.
  FileFaultPlan& fail_at(std::uint64_t op_index);

  /// Reboot: the next incarnation's syscalls execute normally again.
  /// The audit log and op counter survive (they describe history).
  void restore() noexcept { dark_ = false; }
  [[nodiscard]] bool dark() const noexcept { return dark_; }

  // ---- Introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t ops_seen() const noexcept {
    return stats_.ops_seen;
  }
  [[nodiscard]] const FileFaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<FiredFileFault>& fired() const noexcept {
    return fired_;
  }

  // ---- store::FileFaultInjector ------------------------------------------
  store::FileFaultDecision on_file_op(store::FileOp op,
                                      const std::string& path) override;

 private:
  struct Scheduled {
    bool torn = false;
    std::size_t keep_bytes = 0;
  };

  std::unordered_map<std::uint64_t, Scheduled> schedule_;
  std::vector<FiredFileFault> fired_;
  FileFaultStats stats_;
  bool dark_ = false;
};

}  // namespace stash::fault
