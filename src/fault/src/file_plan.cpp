#include "stash/fault/file_plan.hpp"

namespace stash::fault {

FileFaultPlan& FileFaultPlan::torn_write_at(std::uint64_t op_index,
                                            std::size_t keep_bytes) {
  schedule_[op_index] = Scheduled{true, keep_bytes};
  return *this;
}

FileFaultPlan& FileFaultPlan::fail_at(std::uint64_t op_index) {
  schedule_[op_index] = Scheduled{false, 0};
  return *this;
}

store::FileFaultDecision FileFaultPlan::on_file_op(store::FileOp op,
                                                   const std::string& path) {
  const std::uint64_t index = stats_.ops_seen++;
  switch (op) {
    case store::FileOp::kWrite: ++stats_.writes; break;
    case store::FileOp::kFsync: ++stats_.fsyncs; break;
    case store::FileOp::kRename: ++stats_.renames; break;
  }
  if (dark_) {
    ++stats_.dark_ops;
    store::FileFaultDecision d;
    d.fail = true;
    return d;
  }
  const auto it = schedule_.find(index);
  if (it == schedule_.end()) return store::FileFaultDecision::none();
  dark_ = true;  // the process died at this syscall
  ++stats_.faults_fired;
  FiredFileFault f;
  f.op_index = index;
  f.op = op;
  f.path = path;
  // A torn schedule on a non-write op degrades to a plain failure: fsync
  // and rename have no byte-prefix semantics.
  f.torn = it->second.torn && op == store::FileOp::kWrite;
  f.keep_bytes = f.torn ? it->second.keep_bytes : 0;
  fired_.push_back(f);
  store::FileFaultDecision d;
  d.fail = !f.torn;
  d.torn = f.torn;
  d.keep_bytes = f.keep_bytes;
  return d;
}

}  // namespace stash::fault
