#include "stash/fault/plan.hpp"

#include <algorithm>
#include <cmath>

#include "stash/telemetry/metrics.hpp"
#include "stash/util/rng.hpp"

namespace stash::fault {
namespace {

using nand::FaultDecision;
using nand::FaultOp;
using util::hash_words;
using util::Xoshiro256;

struct FaultTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& program_fails = reg.counter("fault.program_fails");
  telemetry::Counter& erase_fails = reg.counter("fault.erase_fails");
  telemetry::Counter& read_fails = reg.counter("fault.read_fails");
  telemetry::Counter& power_cuts = reg.counter("fault.power_cuts");
  telemetry::Counter& read_glitches = reg.counter("fault.read_glitches");
  telemetry::Counter& bad_block_rejections =
      reg.counter("fault.bad_block_rejections");
  telemetry::Counter& dark_ops = reg.counter("fault.dark_ops");
};

FaultTelemetry& fault_telemetry() {
  static FaultTelemetry t;
  return t;
}

bool is_program_class(FaultOp op) noexcept {
  return op == FaultOp::kProgram || op == FaultOp::kPartialProgram ||
         op == FaultOp::kFineProgram;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kProgramFail: return "program_fail";
    case FaultKind::kEraseFail: return "erase_fail";
    case FaultKind::kReadFail: return "read_fail";
    case FaultKind::kPowerCut: return "power_cut";
    case FaultKind::kReadGlitch: return "read_glitch";
    case FaultKind::kGrownBadBlock: return "grown_bad_block";
    case FaultKind::kPredicate: return "predicate";
  }
  return "unknown";
}

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed) {}

// ---- Schedule builders ------------------------------------------------------

FaultPlan& FaultPlan::fail_program_at(std::uint64_t op_index,
                                      double completed_fraction) {
  scheduled_.push_back(
      {op_index, FaultKind::kProgramFail, completed_fraction});
  return *this;
}

FaultPlan& FaultPlan::fail_erase_at(std::uint64_t op_index) {
  scheduled_.push_back({op_index, FaultKind::kEraseFail, 0.0});
  return *this;
}

FaultPlan& FaultPlan::fail_read_at(std::uint64_t op_index) {
  scheduled_.push_back({op_index, FaultKind::kReadFail, 0.0});
  return *this;
}

FaultPlan& FaultPlan::power_cut_at(std::uint64_t op_index,
                                   double completed_fraction) {
  scheduled_.push_back({op_index, FaultKind::kPowerCut, completed_fraction});
  return *this;
}

FaultPlan& FaultPlan::fail_programs(double rate) {
  program_fail_rate_ = std::clamp(rate, 0.0, 1.0);
  return *this;
}

FaultPlan& FaultPlan::fail_erases(double rate) {
  erase_fail_rate_ = std::clamp(rate, 0.0, 1.0);
  return *this;
}

FaultPlan& FaultPlan::glitch_reads(double rate, double bit_flip_rate) {
  read_glitch_rate_ = std::clamp(rate, 0.0, 1.0);
  glitch_bit_flip_rate_ = std::clamp(bit_flip_rate, 0.0, 1.0);
  return *this;
}

FaultPlan& FaultPlan::grow_bad_block(std::uint32_t block) {
  bad_blocks_.insert(block);
  return *this;
}

FaultPlan& FaultPlan::stick_cell(std::uint32_t block, std::uint32_t page,
                                 std::uint32_t cell, int level) {
  stuck_.push_back({block, page, cell, level});
  return *this;
}

FaultPlan& FaultPlan::fail_when(Predicate predicate) {
  predicates_.push_back(std::move(predicate));
  return *this;
}

// ---- Firing -----------------------------------------------------------------

void FaultPlan::note_fired(std::uint64_t op_index, FaultKind kind, FaultOp op,
                           std::uint32_t block, std::uint32_t page) {
  fired_.push_back({op_index, kind, op, block, page});
  switch (kind) {
    case FaultKind::kProgramFail: ++stats_.program_fails; break;
    case FaultKind::kEraseFail: ++stats_.erase_fails; break;
    case FaultKind::kReadFail: ++stats_.read_fails; break;
    case FaultKind::kPowerCut: ++stats_.power_cuts; break;
    case FaultKind::kReadGlitch: ++stats_.read_glitches; break;
    case FaultKind::kGrownBadBlock: ++stats_.bad_block_rejections; break;
    case FaultKind::kPredicate: ++stats_.predicate_fails; break;
  }
}

double FaultPlan::draw(std::uint64_t salt,
                       std::uint64_t op_index) const noexcept {
  return static_cast<double>(
             util::splitmix64(hash_words(seed_, salt, op_index)) >> 11) *
         0x1.0p-53;
}

FaultDecision FaultPlan::on_operation(FaultOp op, std::uint32_t block,
                                      std::uint32_t page) {
  const std::uint64_t idx = stats_.ops_seen++;
  pending_glitch_.reset();

  if (!powered_) {
    ++stats_.dark_ops;
    fault_telemetry().dark_ops.inc();
    return {.fail = false, .power_cut = true, .completed_fraction = 0.0};
  }

  // Point schedule first: an explicit "fail op N" beats every other rule.
  for (auto it = scheduled_.begin(); it != scheduled_.end(); ++it) {
    if (it->op_index != idx) continue;
    const FaultKind kind = it->kind;
    const bool matches =
        kind == FaultKind::kPowerCut ||
        (kind == FaultKind::kProgramFail && is_program_class(op)) ||
        (kind == FaultKind::kEraseFail && op == FaultOp::kErase) ||
        (kind == FaultKind::kReadFail && op == FaultOp::kRead);
    if (!matches) continue;
    const double fraction = it->completed_fraction;
    scheduled_.erase(it);  // one-shot
    note_fired(idx, kind, op, block, page);
    if (kind == FaultKind::kPowerCut) {
      powered_ = false;
      fault_telemetry().power_cuts.inc();
      return {.fail = false, .power_cut = true,
              .completed_fraction = fraction};
    }
    if (kind == FaultKind::kProgramFail) fault_telemetry().program_fails.inc();
    if (kind == FaultKind::kEraseFail) fault_telemetry().erase_fails.inc();
    if (kind == FaultKind::kReadFail) fault_telemetry().read_fails.inc();
    return {.fail = true, .power_cut = false, .completed_fraction = fraction};
  }

  // Grown bad blocks reject programs and erases; reads still work (the FTL
  // must be able to drain a block it is retiring).
  if (op != FaultOp::kRead && bad_blocks_.contains(block)) {
    note_fired(idx, FaultKind::kGrownBadBlock, op, block, page);
    fault_telemetry().bad_block_rejections.inc();
    return {.fail = true, .power_cut = false, .completed_fraction = 0.0};
  }

  for (const Predicate& p : predicates_) {
    if (p(op, block, page)) {
      note_fired(idx, FaultKind::kPredicate, op, block, page);
      return {.fail = true, .power_cut = false, .completed_fraction = 0.0};
    }
  }

  if (is_program_class(op) && program_fail_rate_ > 0.0 &&
      draw(0xFA17'0001ULL, idx) < program_fail_rate_) {
    note_fired(idx, FaultKind::kProgramFail, op, block, page);
    fault_telemetry().program_fails.inc();
    return {.fail = true, .power_cut = false, .completed_fraction = 0.0};
  }
  if (op == FaultOp::kErase && erase_fail_rate_ > 0.0 &&
      draw(0xFA17'0002ULL, idx) < erase_fail_rate_) {
    note_fired(idx, FaultKind::kEraseFail, op, block, page);
    fault_telemetry().erase_fails.inc();
    return {.fail = true, .power_cut = false, .completed_fraction = 0.0};
  }
  if (op == FaultOp::kRead && read_glitch_rate_ > 0.0 &&
      draw(0xFA17'0003ULL, idx) < read_glitch_rate_) {
    // The read completes; its result gets corrupted in corrupt_read /
    // corrupt_probe, keyed by this op index so the damage is reproducible.
    pending_glitch_ = idx;
    note_fired(idx, FaultKind::kReadGlitch, op, block, page);
    fault_telemetry().read_glitches.inc();
  }

  return {};
}

void FaultPlan::corrupt_read(std::uint32_t block, std::uint32_t page,
                             std::span<std::uint8_t> bits, double vref) {
  for (const StuckCell& s : stuck_) {
    if (s.block == block && s.page == page && s.cell < bits.size()) {
      bits[s.cell] = static_cast<double>(s.level) < vref ? 1 : 0;
    }
  }
  if (!pending_glitch_) return;
  const std::uint64_t idx = *pending_glitch_;
  pending_glitch_.reset();
  Xoshiro256 rng(hash_words(seed_, 0x617C4ULL, idx));
  const double expected =
      glitch_bit_flip_rate_ * static_cast<double>(bits.size());
  auto flips = static_cast<std::size_t>(expected);
  if (rng.uniform() < expected - std::floor(expected)) ++flips;
  flips = std::max<std::size_t>(flips, 1);
  for (std::size_t i = 0; i < flips; ++i) {
    bits[rng.below(bits.size())] ^= 1u;
  }
}

void FaultPlan::corrupt_probe(std::uint32_t block, std::uint32_t page,
                              std::span<int> volts) {
  for (const StuckCell& s : stuck_) {
    if (s.block == block && s.page == page && s.cell < volts.size()) {
      volts[s.cell] = s.level;
    }
  }
  if (!pending_glitch_) return;
  const std::uint64_t idx = *pending_glitch_;
  pending_glitch_.reset();
  Xoshiro256 rng(hash_words(seed_, 0x617C4ULL, idx));
  const double expected =
      glitch_bit_flip_rate_ * static_cast<double>(volts.size());
  auto jogs = static_cast<std::size_t>(expected);
  if (rng.uniform() < expected - std::floor(expected)) ++jogs;
  jogs = std::max<std::size_t>(jogs, 1);
  for (std::size_t i = 0; i < jogs; ++i) {
    const std::size_t c = rng.below(volts.size());
    // Sense-amp noise spike: enough to cross a nearby reference.
    const int jolt = 4 + static_cast<int>(rng.below(12));
    volts[c] = std::clamp(volts[c] + (rng() & 1 ? jolt : -jolt), 0, 255);
  }
}

}  // namespace stash::fault
