#include "stash/nand/onfi.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "stash/telemetry/metrics.hpp"
#include "stash/telemetry/trace.hpp"

namespace stash::nand {

using namespace onfi;

namespace {

struct OnfiTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& cmds = reg.counter("onfi.cmds");
  telemetry::Counter& resets = reg.counter("onfi.resets");
  telemetry::Counter& read_ref_shifts = reg.counter("onfi.read_ref_shifts");
  telemetry::Counter& bad_commands = reg.counter("onfi.bad_command");
};

OnfiTelemetry& onfi_telemetry() {
  static OnfiTelemetry t;
  return t;
}

}  // namespace

OnfiDevice::OnfiDevice(FlashChip& chip)
    : chip_(&chip), read_vref_(chip.noise().public_read_vref) {}

void OnfiDevice::set_ready(bool ready) noexcept {
  if (ready) {
    status_ |= kStatusReady;
  } else {
    status_ &= static_cast<std::uint8_t>(~kStatusReady);
  }
}

void OnfiDevice::set_fail(bool fail) noexcept {
  if (fail) {
    status_ |= kStatusFail;
  } else {
    status_ &= static_cast<std::uint8_t>(~kStatusFail);
    last_error_.clear();
  }
}

void OnfiDevice::fail_command(std::string message) noexcept {
  set_fail(true);
  last_error_ = std::move(message);
  onfi_telemetry().bad_commands.inc();
}

std::array<std::uint8_t, 5> OnfiDevice::id() const noexcept {
  // Manufacturer/device bytes derived from the chip serial: stable per
  // chip, distinct across chips (enough for READ ID semantics).
  const std::uint64_t h = util::splitmix64(chip_->serial());
  return {0x98, static_cast<std::uint8_t>(h), static_cast<std::uint8_t>(h >> 8),
          static_cast<std::uint8_t>(h >> 16),
          static_cast<std::uint8_t>(h >> 24)};
}

bool OnfiDevice::decode_row(RowAddress& out) const {
  // 5 address cycles: 2 column (must be zero: whole-page access only),
  // 3 row (page number within the chip, little-endian).
  if (addr_bytes_.size() != 5) return false;
  if (addr_bytes_[0] != 0 || addr_bytes_[1] != 0) return false;
  const std::uint32_t row = static_cast<std::uint32_t>(addr_bytes_[2]) |
                            (static_cast<std::uint32_t>(addr_bytes_[3]) << 8) |
                            (static_cast<std::uint32_t>(addr_bytes_[4]) << 16);
  const auto& geom = chip_->geometry();
  out.block = row / geom.pages_per_block;
  out.page = row % geom.pages_per_block;
  return out.block < geom.blocks;
}

void OnfiDevice::unpack_bits() {
  bit_buffer_.assign(chip_->geometry().cells_per_page, 1);
  const std::size_t n =
      std::min<std::size_t>(data_buffer_.size() * 8, bit_buffer_.size());
  for (std::size_t i = 0; i < n; ++i) {
    bit_buffer_[i] =
        static_cast<std::uint8_t>((data_buffer_[i / 8] >> (7 - i % 8)) & 1);
  }
}

void OnfiDevice::trace_cmd(std::uint8_t opcode, double busy_us) const {
  if (!trace_) return;
  // Only the confirm cycles carry a decoded row; every other command is
  // address-less at the bus level.
  std::uint32_t block = telemetry::TraceEvent::kNoAddr;
  std::uint32_t page = telemetry::TraceEvent::kNoAddr;
  if (opcode == kReadConfirm || opcode == kProgramConfirm ||
      opcode == kEraseConfirm) {
    block = armed_row_.block;
    page = armed_row_.page;
  }
  trace_->record(opcode, block, page, busy_us, status_);
}

void OnfiDevice::cmd(std::uint8_t opcode) {
  onfi_telemetry().cmds.inc();
  // kReset is traced inside reset_after() (which also serves the direct
  // partial-programming path); everything else is recorded here with the
  // chip busy time the command consumed.
  if (trace_ == nullptr || opcode == kReset) {
    cmd_impl(opcode);
    return;
  }
  const double t0 = chip_->ledger().time_us;
  cmd_impl(opcode);
  trace_cmd(opcode, chip_->ledger().time_us - t0);
}

void OnfiDevice::cmd_impl(std::uint8_t opcode) {
  switch (opcode) {
    case kReset:
      reset_after(0.5);
      return;
    case kReadStatus:
      return;  // status() is always observable
    case kReadId: {
      const auto chip_id = id();
      read_buffer_.assign(chip_id.begin(), chip_id.end());
      read_pos_ = 0;
      state_ = State::kIdle;
      return;
    }
    case kRead:
      addr_bytes_.clear();
      state_ = State::kReadAddr;
      set_fail(false);
      return;
    case kReadConfirm: {
      RowAddress row;
      if (state_ != State::kReadAddr || !decode_row(row)) {
        set_fail(true);
        state_ = State::kIdle;
        return;
      }
      armed_row_ = row;
      const auto bits = chip_->read_page_at(row.block, row.page, read_vref_);
      read_buffer_.assign((bits.size() + 7) / 8, 0);
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] & 1) {
          read_buffer_[i / 8] |=
              static_cast<std::uint8_t>(1u << (7 - i % 8));
        }
      }
      read_pos_ = 0;
      state_ = State::kReadData;
      return;
    }
    case kProgram:
      addr_bytes_.clear();
      data_buffer_.clear();
      state_ = State::kProgramAddr;
      set_fail(false);
      return;
    case kProgramConfirm: {
      RowAddress row;
      if ((state_ != State::kProgramData && state_ != State::kProgramAddr) ||
          !decode_row(row)) {
        set_fail(true);
        state_ = State::kIdle;
        return;
      }
      armed_row_ = row;
      unpack_bits();
      state_ = State::kProgramBusy;
      set_ready(false);
      return;
    }
    case kErase:
      addr_bytes_.clear();
      state_ = State::kEraseAddr;
      set_fail(false);
      return;
    case kEraseConfirm: {
      // Erase uses 3 row-address cycles only.
      if (state_ != State::kEraseAddr || addr_bytes_.size() != 3) {
        set_fail(true);
        state_ = State::kIdle;
        return;
      }
      const std::uint32_t row =
          static_cast<std::uint32_t>(addr_bytes_[0]) |
          (static_cast<std::uint32_t>(addr_bytes_[1]) << 8) |
          (static_cast<std::uint32_t>(addr_bytes_[2]) << 16);
      const std::uint32_t block = row / chip_->geometry().pages_per_block;
      armed_row_ = RowAddress{block, 0};
      set_fail(!chip_->erase_block(block).is_ok());
      state_ = State::kIdle;
      return;
    }
    case kSetFeatures:
      state_ = State::kFeatureAddr;
      return;
    default: {
      char msg[48];
      std::snprintf(msg, sizeof(msg), "unknown opcode 0x%02X",
                    static_cast<unsigned>(opcode));
      fail_command(msg);
      state_ = State::kIdle;
      return;
    }
  }
}

void OnfiDevice::addr(std::uint8_t byte) {
  switch (state_) {
    case State::kReadAddr:
    case State::kProgramAddr:
    case State::kEraseAddr:
      addr_bytes_.push_back(byte);
      if (state_ == State::kProgramAddr && addr_bytes_.size() == 5) {
        state_ = State::kProgramData;
      }
      return;
    case State::kFeatureAddr:
      feature_addr_ = byte;
      state_ = State::kFeatureData;
      return;
    default:
      fail_command("address cycle outside an address phase");
      return;
  }
}

void OnfiDevice::data_in(std::span<const std::uint8_t> bytes) {
  switch (state_) {
    case State::kProgramData:
      data_buffer_.insert(data_buffer_.end(), bytes.begin(), bytes.end());
      return;
    case State::kFeatureData:
      if (feature_addr_ == kFeatureReadReference && !bytes.empty()) {
        // One parameter byte: the new reference in normalized units.
        read_vref_ = static_cast<double>(bytes[0]);
        onfi_telemetry().read_ref_shifts.inc();
        // The EF command cycle was traced before the parameter arrived;
        // fold the new reference into that event so retry sequences are
        // visible in the JSONL trace.
        if (trace_) trace_->amend_last_aux(read_vref_);
      }
      state_ = State::kIdle;
      return;
    default:
      fail_command("data cycle outside a data phase");
      return;
  }
}

std::vector<std::uint8_t> OnfiDevice::data_out(std::size_t nbytes) {
  std::vector<std::uint8_t> out;
  out.reserve(nbytes);
  while (out.size() < nbytes && read_pos_ < read_buffer_.size()) {
    out.push_back(read_buffer_[read_pos_++]);
  }
  return out;
}

void OnfiDevice::wait_ready() {
  const bool was_busy = state_ == State::kProgramBusy;
  const double t0 = chip_->ledger().time_us;
  if (was_busy) {
    set_fail(!chip_->program_page(armed_row_.block, armed_row_.page,
                                  bit_buffer_)
                  .is_ok());
  }
  state_ = State::kIdle;
  set_ready(true);
  if (was_busy && trace_) {
    // The busy time elapsed after the PROGRAM-confirm cycle was recorded;
    // fold tPROG and the final status back into that event.
    trace_->amend_last(chip_->ledger().time_us - t0, status_);
  }
}

void OnfiDevice::reset_after(double fraction) {
  onfi_telemetry().resets.inc();
  const bool was_busy = state_ == State::kProgramBusy;
  const double t0 = chip_->ledger().time_us;
  if (state_ == State::kProgramBusy) {
    // The paper's primitive: PROGRAM aborted midway leaves partial charge
    // on the cells that were being driven toward '0'.
    std::vector<std::uint32_t> cells;
    for (std::uint32_t c = 0; c < bit_buffer_.size(); ++c) {
      if ((bit_buffer_[c] & 1) == 0) cells.push_back(c);
    }
    const double scale = std::clamp(fraction / 0.5, 0.1, 2.0);
    set_fail(!chip_->partial_program(armed_row_.block, armed_row_.page, cells,
                                     scale)
                  .is_ok());
  } else {
    set_fail(false);
  }
  state_ = State::kIdle;
  set_ready(true);
  if (trace_) {
    trace_->record(kReset,
                   was_busy ? armed_row_.block : telemetry::TraceEvent::kNoAddr,
                   was_busy ? armed_row_.page : telemetry::TraceEvent::kNoAddr,
                   chip_->ledger().time_us - t0, status_,
                   was_busy ? fraction : 0.0);
  }
}

// ---- Convenience sequences ---------------------------------------------------

std::vector<std::uint8_t> OnfiDevice::read_page(std::uint32_t block,
                                                std::uint32_t page) {
  const std::uint32_t row = block * chip_->geometry().pages_per_block + page;
  cmd(kRead);
  addr(0);
  addr(0);
  addr(static_cast<std::uint8_t>(row));
  addr(static_cast<std::uint8_t>(row >> 8));
  addr(static_cast<std::uint8_t>(row >> 16));
  cmd(kReadConfirm);
  return data_out(page_bytes());
}

util::Status OnfiDevice::command_status(util::ErrorCode code,
                                        const char* fallback) const {
  if ((status_ & kStatusFail) == 0) return util::Status::ok();
  return util::Status{code, last_error_.empty() ? fallback : last_error_};
}

util::Status OnfiDevice::program_page(std::uint32_t block, std::uint32_t page,
                                      std::span<const std::uint8_t> bytes) {
  const std::uint32_t row = block * chip_->geometry().pages_per_block + page;
  cmd(kProgram);
  addr(0);
  addr(0);
  addr(static_cast<std::uint8_t>(row));
  addr(static_cast<std::uint8_t>(row >> 8));
  addr(static_cast<std::uint8_t>(row >> 16));
  data_in(bytes);
  cmd(kProgramConfirm);
  wait_ready();
  return command_status(util::ErrorCode::kProgramFail, "PROGRAM failed");
}

util::Status OnfiDevice::erase_block(std::uint32_t block) {
  const std::uint32_t row = block * chip_->geometry().pages_per_block;
  cmd(kErase);
  addr(static_cast<std::uint8_t>(row));
  addr(static_cast<std::uint8_t>(row >> 8));
  addr(static_cast<std::uint8_t>(row >> 16));
  cmd(kEraseConfirm);
  return command_status(util::ErrorCode::kEraseFail, "ERASE failed");
}

util::Status OnfiDevice::partial_program_page(
    std::uint32_t block, std::uint32_t page,
    std::span<const std::uint8_t> bytes, double fraction) {
  const std::uint32_t row = block * chip_->geometry().pages_per_block + page;
  cmd(kProgram);
  addr(0);
  addr(0);
  addr(static_cast<std::uint8_t>(row));
  addr(static_cast<std::uint8_t>(row >> 8));
  addr(static_cast<std::uint8_t>(row >> 16));
  data_in(bytes);
  cmd(kProgramConfirm);
  reset_after(fraction);
  return command_status(util::ErrorCode::kProgramFail,
                        "partial PROGRAM failed");
}

void OnfiDevice::set_read_reference(double vref) {
  cmd(kSetFeatures);
  addr(kFeatureReadReference);
  const std::uint8_t param = static_cast<std::uint8_t>(
      std::clamp(vref, 0.0, 255.0));
  data_in(std::span<const std::uint8_t>(&param, 1));
}

}  // namespace stash::nand
