#include "stash/nand/fingerprint.hpp"

#include <algorithm>

#include "stash/crypto/sha256.hpp"
#include "stash/util/stats.hpp"

namespace stash::nand {

namespace {

/// Per-page stable observables: the erased-state mean (manufacturing page
/// offset) and the tail mass (per-page tail scale), both averaged over
/// several probes to suppress readout noise.
struct PageTrait {
  double mean = 0.0;
  double tail = 0.0;  // fraction of cells at or above level 34
};

PageTrait measure_page(FlashChip& chip, std::uint32_t block,
                       std::uint32_t page, int reads) {
  PageTrait trait;
  double n = 0.0;
  for (int r = 0; r < std::max(1, reads); ++r) {
    const auto volts = chip.probe_voltages(block, page);
    for (int v : volts) {
      trait.mean += v;
      trait.tail += v >= 34;
      n += 1.0;
    }
  }
  trait.mean /= n;
  trait.tail /= n;
  return trait;
}

/// Cluster program-speed bits: race 16-cell clusters with a run of PP steps
/// and compare adjacent clusters' mean voltage gain.  Speed is a permanent
/// per-cell trait, so the ordering reproduces across extractions (with a
/// few percent of fuzzy bits near ties).  The race length sets the
/// signal-to-noise ratio of each comparison: the speed signal in a
/// cluster's gain grows linearly with the number of steps while the
/// per-step programming noise grows only with its square root, so longer
/// races quadratically suppress same-device bit flips.
std::vector<std::uint8_t> speed_bits(FlashChip& chip, std::uint32_t block,
                                     std::uint32_t page,
                                     std::uint32_t cells, int reads) {
  constexpr std::uint32_t kCluster = 16;
  constexpr int kSteps = 16;
  const std::uint32_t usable =
      std::min(cells, chip.geometry().cells_per_page) / kCluster * kCluster;
  std::vector<double> gain(usable / kCluster, 0.0);

  for (int r = 0; r < std::max(1, reads); ++r) {
    (void)chip.erase_block(block);
    const auto before = chip.probe_voltages(block, page);
    std::vector<std::uint32_t> targets(usable);
    for (std::uint32_t c = 0; c < usable; ++c) targets[c] = c;
    for (int s = 0; s < kSteps; ++s) {
      (void)chip.partial_program(block, page, targets);
    }
    const auto after = chip.probe_voltages(block, page);
    for (std::uint32_t c = 0; c < usable; ++c) {
      gain[c / kCluster] += after[c] - before[c];
    }
  }

  std::vector<std::uint8_t> bits;
  bits.reserve(gain.size() / 2);
  for (std::size_t i = 0; i + 1 < gain.size(); i += 2) {
    bits.push_back(gain[i] > gain[i + 1] ? 1 : 0);
  }
  return bits;
}

}  // namespace

double DeviceFingerprint::distance(const DeviceFingerprint& other) const {
  if (feature_bits.empty() || feature_bits.size() != other.feature_bits.size()) {
    return 1.0;
  }
  std::size_t diff = 0;
  for (std::size_t i = 0; i < feature_bits.size(); ++i) {
    diff += (feature_bits[i] ^ other.feature_bits[i]) & 1;
  }
  return static_cast<double>(diff) / static_cast<double>(feature_bits.size());
}

DeviceFingerprint fingerprint_device(FlashChip& chip,
                                     const FingerprintConfig& config) {
  DeviceFingerprint fp;
  const auto& geom = chip.geometry();
  const std::uint32_t blocks = std::min(config.blocks, geom.blocks);
  const std::uint32_t pages =
      std::min(config.pages_per_block, geom.pages_per_block);

  // Measure every sampled page in the same (freshly erased) state.
  std::vector<PageTrait> traits;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    (void)chip.erase_block(b);
    for (std::uint32_t p = 0; p < pages; ++p) {
      traits.push_back(measure_page(chip, b, p, config.reads));
    }
  }

  // Pairwise orderings of the page means and tail masses: common-mode wear
  // shifts cancel, the manufacturing offsets remain.
  for (std::size_t i = 0; i < traits.size(); ++i) {
    for (std::size_t j = i + 1; j < traits.size(); ++j) {
      fp.feature_bits.push_back(traits[i].mean > traits[j].mean ? 1 : 0);
      fp.feature_bits.push_back(traits[i].tail > traits[j].tail ? 1 : 0);
    }
  }

  // Cluster speed-race bits from the first sampled page of each block.
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const auto bits =
        speed_bits(chip, b, 0, config.cells_per_page, config.reads);
    fp.feature_bits.insert(fp.feature_bits.end(), bits.begin(), bits.end());
    (void)chip.erase_block(b);  // leave the block clean
  }

  const auto digest = crypto::Sha256::hash(fp.feature_bits);
  std::copy(digest.begin(), digest.end(), fp.id.begin());
  return fp;
}

}  // namespace stash::nand
