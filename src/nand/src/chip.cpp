#include "stash/nand/chip.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "stash/kernels/draws.hpp"
#include "stash/kernels/kernels.hpp"
#include "stash/telemetry/metrics.hpp"
#include "stash/trace/trace.hpp"
#include "stash/util/wire.hpp"

namespace stash::nand {
namespace {

/// Trace span address for a page-level op: (block << 32) | page.
constexpr std::uint64_t span_key(std::uint32_t block,
                                 std::uint32_t page) noexcept {
  return (static_cast<std::uint64_t>(block) << 32) | page;
}

using util::ErrorCode;
using util::hash_words;
using util::Xoshiro256;

// Stateless trait hashes live in stash::kernels now so the batch kernels
// and FlashChip's sparse paths share one (bit-compatible) definition.
using kernels::hash_normal;
using kernels::hash_uniform;

constexpr double kVmax = 255.0;

/// Thread-local batch scratch: program_page draws a full page of targets
/// and a weak-cell mask per call; reusing the buffers keeps the hot path
/// allocation-free after the first page on each thread.
struct Scratch {
  std::vector<double> targets;
  std::vector<std::uint8_t> weak;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

/// Process-wide instrument handles, resolved once so the per-operation cost
/// is a single relaxed atomic add.  Counts mirror the CostLedger semantics
/// (a voltage probe is charged as a read; a stress cycle as a program).
struct ChipTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& programs = reg.counter("nand.programs");
  telemetry::Counter& partial_programs = reg.counter("nand.partial_programs");
  telemetry::Counter& fine_programs = reg.counter("nand.fine_programs");
  telemetry::Counter& erases = reg.counter("nand.erases");
  telemetry::Counter& reads = reg.counter("nand.reads");
  telemetry::Counter& probes = reg.counter("nand.probes");
  telemetry::Counter& stress_ops = reg.counter("nand.stress_ops");
  /// Per-block PEC observed at each erase: the wear distribution.
  telemetry::LatencyHistogram& pec_at_erase = reg.histogram("nand.pec_at_erase");
  /// Wall-clock nanoseconds per cell of the voltage-domain hot loops
  /// (program_page and read_page_at) — the perf-baseline harness asserts on
  /// this same quantity.
  telemetry::LatencyHistogram& ns_per_cell = reg.histogram("nand.ns_per_cell");
};

ChipTelemetry& chip_telemetry() {
  static ChipTelemetry t;
  return t;
}

}  // namespace

FlashChip::FlashChip(const Geometry& geometry, const NoiseModel& noise,
                     std::uint64_t serial_seed, OpCosts costs)
    : geom_(geometry),
      noise_(noise),
      costs_(costs),
      seed_(serial_seed),
      blocks_(geometry.blocks),
      locks_(std::make_unique<std::mutex[]>(kLockStripes + 1)),
      ledger_(std::make_unique<AtomicLedger>()) {
  if (util::Status valid = noise.validate(); !valid.is_ok()) {
    throw std::invalid_argument(valid.to_string());
  }
}

void FlashChip::charge(double us, double uj) noexcept {
  // Fixed-point (nano-unit) accumulation: integer adds are exact and
  // commutative, so ledger totals are independent of thread interleaving.
  ledger_->time_ns.fetch_add(static_cast<std::uint64_t>(std::llround(us * 1e3)),
                             std::memory_order_relaxed);
  ledger_->energy_nj.fetch_add(
      static_cast<std::uint64_t>(std::llround(uj * 1e3)),
      std::memory_order_relaxed);
}

std::uint64_t FlashChip::time_ns() const noexcept {
  return ledger_->time_ns.load(std::memory_order_relaxed);
}

CostLedger FlashChip::ledger() const noexcept {
  CostLedger l;
  l.time_us =
      static_cast<double>(ledger_->time_ns.load(std::memory_order_relaxed)) /
      1e3;
  l.energy_uj =
      static_cast<double>(ledger_->energy_nj.load(std::memory_order_relaxed)) /
      1e3;
  l.reads = ledger_->reads.load(std::memory_order_relaxed);
  l.programs = ledger_->programs.load(std::memory_order_relaxed);
  l.erases = ledger_->erases.load(std::memory_order_relaxed);
  l.partial_programs =
      ledger_->partial_programs.load(std::memory_order_relaxed);
  return l;
}

FaultDecision FlashChip::consult_fault(FaultOp op, std::uint32_t block,
                                       std::uint32_t page) {
  const std::lock_guard<std::mutex> lock(locks_[kLockStripes]);
  return fault_->on_operation(op, block, page);
}

void FlashChip::reset_ledger() noexcept {
  ledger_->time_ns.store(0, std::memory_order_relaxed);
  ledger_->energy_nj.store(0, std::memory_order_relaxed);
  ledger_->reads.store(0, std::memory_order_relaxed);
  ledger_->programs.store(0, std::memory_order_relaxed);
  ledger_->erases.store(0, std::memory_order_relaxed);
  ledger_->partial_programs.store(0, std::memory_order_relaxed);
}

Status FlashChip::check_addr(std::uint32_t block, std::uint32_t page) const {
  if (block >= geom_.blocks || page >= geom_.pages_per_block) {
    return {ErrorCode::kOutOfBounds, "address outside chip geometry"};
  }
  return Status::ok();
}

FlashChip::Block& FlashChip::touch(std::uint32_t block) {
  auto& slot = blocks_[block];
  if (!slot) {
    slot = std::make_unique<Block>();
    slot->state.assign(geom_.pages_per_block, PageState::kErased);
    slot->age_hours.assign(geom_.pages_per_block, 0.0f);
    slot->v.resize(static_cast<std::size_t>(geom_.pages_per_block) *
                   geom_.cells_per_page);
    // A fresh (never-cycled) block sits in the erased state.
    for (std::uint32_t p = 0; p < geom_.pages_per_block; ++p) {
      redraw_page_erased(*slot, block, p);
    }
  }
  return *slot;
}

const FlashChip::Block* FlashChip::peek(std::uint32_t block) const {
  return block < blocks_.size() ? blocks_[block].get() : nullptr;
}

// ---- Deterministic manufacturing traits ------------------------------------

double FlashChip::chip_mu_offset() const noexcept {
  return noise_.chip_mu_sigma * hash_normal(hash_words(seed_, 0xC41FULL));
}

double FlashChip::block_mu_offset(std::uint32_t block) const noexcept {
  return noise_.block_mu_sigma *
         hash_normal(hash_words(seed_, 0xB10CULL, block));
}

double FlashChip::page_mu_offset(std::uint32_t block,
                                 std::uint32_t page) const noexcept {
  return noise_.page_mu_sigma *
         hash_normal(hash_words(seed_, 0x9A6EULL, block, page));
}

double FlashChip::cell_speed(std::uint32_t block, std::uint32_t page,
                             std::uint32_t cell) const noexcept {
  return 1.0 + noise_.cell_speed_sigma *
                   hash_normal(hash_words(seed_, 0x59EEDULL, block, page, cell));
}

bool FlashChip::cell_is_weak(std::uint32_t block, std::uint32_t page,
                             std::uint32_t cell) const noexcept {
  return hash_uniform(hash_words(seed_, 0x3EAFULL, block, page, cell)) <
         noise_.weak_cell_prob;
}

double FlashChip::effective_speed(std::uint32_t block, std::uint32_t page,
                                  std::uint32_t cell) const {
  double speed = cell_speed(block, page, cell);
  if (const Block* blk = peek(block)) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(page) * geom_.cells_per_page + cell;
    if (auto it = blk->stress.find(key); it != blk->stress.end()) {
      speed += noise_.stress_speed_shift_per_kcycle *
               static_cast<double>(it->second) / 1000.0;
    }
    // Wear-induced random speed drift: grows with PEC and decorrelates over
    // time (bucketized), gradually burying any deliberate stress signal.
    if (blk->pec > 0) {
      const std::uint64_t bucket = blk->pec / 100;
      speed += noise_.speed_wear_sigma *
               (static_cast<double>(blk->pec) / 1000.0) *
               hash_normal(hash_words(seed_, 0x77EA4ULL, block, page, cell,
                                      bucket));
    }
  }
  return speed;
}

// ---- Voltage drawing --------------------------------------------------------

void FlashChip::redraw_page_erased(Block& blk, std::uint32_t block,
                                   std::uint32_t page) noexcept {
  const double mu = noise_.erased_mu + chip_mu_offset() +
                    block_mu_offset(block) + page_mu_offset(block, page) +
                    noise_.erased_wear_shift_per_kpec *
                        static_cast<double>(blk.pec) / 1000.0;
  // Unit-dependent tail mass: each block/page carries its own lognormal
  // multiplier on the tail probability (§4 unit-to-unit variation).
  const double tail_scale =
      std::exp(noise_.tail_block_sigma *
                   hash_normal(hash_words(seed_, 0x7A11ULL, block)) +
               noise_.tail_page_sigma *
                   hash_normal(hash_words(seed_, 0x7A12ULL, block, page)));
  const double tail_prob = std::min(0.2, noise_.erased_tail_prob * tail_scale);
  const double tail_mean =
      noise_.erased_tail_mean *
      std::exp(noise_.tail_mean_block_sigma *
               hash_normal(hash_words(seed_, 0x7A13ULL, block)));

  float* row =
      blk.v.data() + static_cast<std::size_t>(page) * geom_.cells_per_page;
  const kernels::DrawKey key = kernels::derive_key(
      seed_, kernels::Op::kErasedFill, block, page, blk.epoch);
  // Cap at 80: the erased state physically cannot hold half-programmed
  // charge — the tail stays well below any read reference (Fig. 2a's
  // ~70-level reach).
  const kernels::ErasedParams params{mu, noise_.erased_cell_sigma, tail_prob,
                                     tail_mean, 80.0};
  kernels::erased_fill(key, params, row, 0, geom_.cells_per_page);
}

// ---- Standard operations ------------------------------------------------------

Status FlashChip::erase_block(std::uint32_t block) {
  STASH_RETURN_IF_ERROR(check_addr(block, 0));
  trace::ScopedSpan span(trace::Stage::kNandErase, trace::Op::kErase,
                         span_key(block, 0));
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  if (blk.pec >= geom_.pec_limit * 2) {
    return {ErrorCode::kWornOut, "block exceeded twice its rated lifetime"};
  }
  FaultDecision fd;
  if (fault_) fd = consult_fault(FaultOp::kErase, block, 0);
  // Even an interrupted erase pulse wears the block.
  ++blk.pec;
  ++blk.epoch;  // one epoch per erase; pages share it (keys include page)
  blk.next_program_page = 0;
  // An interrupted erase leaves a prefix of wordlines cleanly erased and the
  // rest untouched (still reading as programmed) — the block is unusable
  // until a successful erase.
  const double frac = fd.interrupts() ? std::clamp(fd.completed_fraction, 0.0, 1.0) : 1.0;
  const auto erased_pages = static_cast<std::uint32_t>(
      frac * static_cast<double>(geom_.pages_per_block));
  for (std::uint32_t p = 0; p < geom_.pages_per_block; ++p) {
    if (fd.interrupts() && p >= erased_pages) continue;
    blk.state[p] = PageState::kErased;
    blk.age_hours[p] = 0.0f;
    redraw_page_erased(blk, block, p);
  }
  charge(costs_.erase_us, costs_.erase_uj);
  span.set_cost_us(costs_.erase_us);
  span.set_status(static_cast<std::uint8_t>(
      fd.power_cut ? ErrorCode::kPowerLoss
      : fd.fail    ? ErrorCode::kEraseFail
                   : ErrorCode::kOk));
  ledger_->erases.fetch_add(1, std::memory_order_relaxed);
  chip_telemetry().erases.inc();
  chip_telemetry().pec_at_erase.record(blk.pec);
  if (fd.power_cut) return {ErrorCode::kPowerLoss, "power lost during erase"};
  if (fd.fail) return {ErrorCode::kEraseFail, "erase reported status failure"};
  return Status::ok();
}

Status FlashChip::program_page(std::uint32_t block, std::uint32_t page,
                               std::span<const std::uint8_t> bits) {
  STASH_RETURN_IF_ERROR(check_addr(block, page));
  if (bits.size() != geom_.cells_per_page) {
    return {ErrorCode::kInvalidArgument, "bit buffer != cells per page"};
  }
  trace::ScopedSpan span(trace::Stage::kNandProgram, trace::Op::kWrite,
                         span_key(block, page), bits.size() / 8);
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  if (blk.state[page] != PageState::kErased) {
    return {ErrorCode::kProgramFail, "page already programmed (no in-place update)"};
  }
  if (geom_.enforce_sequential_program && page != blk.next_program_page) {
    return {ErrorCode::kProgramFail, "pages must be programmed in order"};
  }
  FaultDecision fd;
  if (fault_) fd = consult_fault(FaultOp::kProgram, block, page);
  // A failed program typically aborts mid-ISPP, leaving cells part-way to
  // target; a power cut applies exactly the scheduled fraction (0 = the
  // pulse never started).
  const double frac =
      !fd.interrupts() ? 1.0
      : fd.power_cut   ? std::clamp(fd.completed_fraction, 0.0, 1.0)
      : fd.completed_fraction > 0.0
          ? std::clamp(fd.completed_fraction, 0.0, 1.0)
          : 0.5;

#ifndef STASH_TELEMETRY_DISABLED
  const auto hot_start = std::chrono::steady_clock::now();
#endif
  const double wear_k = static_cast<double>(blk.pec) / 1000.0;
  const double mu = noise_.prog_mu + chip_mu_offset() + block_mu_offset(block) +
                    page_mu_offset(block, page) +
                    noise_.prog_wear_shift_per_kpec * wear_k;
  const double sigma =
      noise_.prog_cell_sigma + noise_.wear_sigma_per_kpec * wear_k;

  const std::uint32_t cells = geom_.cells_per_page;
  float* row = blk.v.data() + static_cast<std::size_t>(page) * cells;
  ++blk.epoch;
  const kernels::DrawKey tkey = kernels::derive_key(
      seed_, kernels::Op::kProgramTarget, block, page, blk.epoch);
  Scratch& s = scratch();
  s.targets.resize(cells);
  s.weak.resize(cells);
  // Batch-draw nominal targets for every cell (sub-stream 0), then
  // overwrite the rare weak cells from sub-stream 1: weak cells program
  // low, and wear makes them weaker still — the public-data BER growth of
  // §8.  Drawing all cells and masking afterwards keeps the loop dense;
  // counter-based draws make the unused targets free of side effects.
  kernels::normal_row(tkey, mu, sigma, s.targets.data(), 0, cells);
  kernels::weak_mask(seed_, block, page, noise_.weak_cell_prob, s.weak.data(),
                     0, cells);
  for (std::uint32_t c = 0; c < cells; ++c) {
    if (s.weak[c]) {
      s.targets[c] = kernels::normal_at(tkey, c, 1,
                                        noise_.weak_cell_mu - 2.0 * wear_k,
                                        noise_.weak_cell_sigma);
    }
  }
  // ISPP apply: never lowers a cell's voltage; an interrupted program only
  // moves each cell `frac` of the way toward its target.  Data-'1' cells
  // stay erased.
  kernels::program_apply(row, s.targets.data(), bits.data(), cells, frac,
                         kVmax);
  // The page is consumed even when the program was interrupted: the device
  // cannot tell how much charge landed, so it may not be reprogrammed
  // without an erase.
  blk.state[page] = PageState::kProgrammed;
  blk.age_hours[page] = 0.0f;
  blk.next_program_page = std::max(blk.next_program_page, page + 1);

  disturb_neighbors(blk, block, page, frac);
#ifndef STASH_TELEMETRY_DISABLED
  {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - hot_start)
                        .count();
    chip_telemetry().ns_per_cell.record(
        static_cast<std::uint64_t>(ns) / std::max<std::uint32_t>(1, cells));
  }
#endif

  charge(costs_.program_us, costs_.program_uj);
  span.set_cost_us(costs_.program_us);
  span.set_status(static_cast<std::uint8_t>(
      fd.power_cut ? ErrorCode::kPowerLoss
      : fd.fail    ? ErrorCode::kProgramFail
                   : ErrorCode::kOk));
  ledger_->programs.fetch_add(1, std::memory_order_relaxed);
  chip_telemetry().programs.inc();
  if (fd.power_cut) return {ErrorCode::kPowerLoss, "power lost during program"};
  if (fd.fail) return {ErrorCode::kProgramFail, "program reported status failure"};
  return Status::ok();
}

std::vector<std::uint8_t> FlashChip::read_page(std::uint32_t block,
                                               std::uint32_t page) {
  return read_page_at(block, page, noise_.public_read_vref);
}

std::size_t FlashChip::read_page_into(std::uint32_t block, std::uint32_t page,
                                      std::span<std::uint8_t> out) {
  return read_page_at_into(block, page, noise_.public_read_vref, out);
}

std::vector<std::uint8_t> FlashChip::read_page_at(std::uint32_t block,
                                                  std::uint32_t page,
                                                  double vref) {
  std::vector<std::uint8_t> out(geom_.cells_per_page);
  const std::size_t cells = read_page_at_into(block, page, vref, out);
  if (cells == 0) return {};
  return out;
}

std::size_t FlashChip::read_page_at_into(std::uint32_t block,
                                         std::uint32_t page, double vref,
                                         std::span<std::uint8_t> out) {
  if (!check_addr(block, page).is_ok()) return 0;
  if (out.size() < geom_.cells_per_page) return 0;
  if (fault_ && consult_fault(FaultOp::kRead, block, page).interrupts()) {
    return 0;
  }
  trace::ScopedSpan span(trace::Stage::kNandRead, trace::Op::kRead,
                         span_key(block, page), geom_.cells_per_page / 8);
  span.set_cost_us(costs_.read_us);
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
#ifndef STASH_TELEMETRY_DISABLED
  const auto hot_start = std::chrono::steady_clock::now();
#endif
  const std::uint32_t cells = geom_.cells_per_page;
  const float* row = blk.v.data() + static_cast<std::size_t>(page) * cells;
  kernels::threshold_row(row, vref, out.data(), cells);

  // Read disturb: a handful of erased-level cells gain a whisker of charge.
  // Event count, victim cells, and magnitudes are all counter-based draws
  // (cell index = event index), so reads stay deterministic under the same
  // contract as every other op.
  ++blk.epoch;
  const kernels::DrawKey rkey = kernels::derive_key(
      seed_, kernels::Op::kReadDisturb, block, page, blk.epoch);
  const double expected =
      noise_.read_disturb_prob * static_cast<double>(cells);
  auto events = static_cast<std::uint32_t>(expected);
  if (kernels::uniform_at(rkey, 0, 2) < expected - std::floor(expected)) {
    ++events;
  }
  float* mrow = blk.v.data() + static_cast<std::size_t>(page) * cells;
  for (std::uint32_t i = 0; i < events; ++i) {
    const auto c = static_cast<std::uint32_t>(
        kernels::bounded(kernels::u64_at(rkey, i, 0), cells));
    if (mrow[c] < 90.0f) {
      mrow[c] = static_cast<float>(std::clamp(
          mrow[c] + std::max(0.0, kernels::normal_at(
                                      rkey, i, 1, noise_.read_disturb_mu,
                                      noise_.read_disturb_sigma)),
          0.0, kVmax));
    }
  }
#ifndef STASH_TELEMETRY_DISABLED
  {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - hot_start)
                        .count();
    chip_telemetry().ns_per_cell.record(
        static_cast<std::uint64_t>(ns) / std::max<std::uint32_t>(1, cells));
  }
#endif

  charge(costs_.read_us, costs_.read_uj);
  ledger_->reads.fetch_add(1, std::memory_order_relaxed);
  chip_telemetry().reads.inc();
  if (fault_) {
    const std::lock_guard<std::mutex> fault_guard(locks_[kLockStripes]);
    fault_->corrupt_read(block, page, {out.data(), cells}, vref);
  }
  return cells;
}

std::vector<int> FlashChip::probe_voltages(std::uint32_t block,
                                           std::uint32_t page) {
  if (!check_addr(block, page).is_ok()) return {};
  std::vector<int> out(geom_.cells_per_page);
  if (!probe_voltages_into(block, page, out).is_ok()) return {};
  return out;
}

Status FlashChip::probe_voltages_into(std::uint32_t block, std::uint32_t page,
                                      std::span<int> out) {
  STASH_RETURN_IF_ERROR(check_addr(block, page));
  if (out.size() != geom_.cells_per_page) {
    return {ErrorCode::kInvalidArgument, "probe buffer != cells per page"};
  }
  if (fault_ && consult_fault(FaultOp::kRead, block, page).interrupts()) {
    return {ErrorCode::kCorrupted, "probe dropped by fault injection"};
  }
  trace::ScopedSpan span(trace::Stage::kNandProbe, trace::Op::kProbe,
                         span_key(block, page));
  span.set_cost_us(costs_.read_us);
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  const float* row =
      blk.v.data() + static_cast<std::size_t>(page) * geom_.cells_per_page;
  kernels::quantize_row(row, out.data(), geom_.cells_per_page);
  charge(costs_.read_us, costs_.read_uj);
  ledger_->reads.fetch_add(1, std::memory_order_relaxed);
  chip_telemetry().reads.inc();
  chip_telemetry().probes.inc();
  if (fault_) {
    const std::lock_guard<std::mutex> fault_guard(locks_[kLockStripes]);
    fault_->corrupt_probe(block, page, {out.data(), out.size()});
  }
  return Status::ok();
}

// ---- Vendor programming ---------------------------------------------------

Status FlashChip::partial_program(std::uint32_t block, std::uint32_t page,
                                  std::span<const std::uint32_t> cells,
                                  double step_scale) {
  STASH_RETURN_IF_ERROR(check_addr(block, page));
  if (step_scale <= 0.0) {
    return {ErrorCode::kInvalidArgument, "step_scale must be positive"};
  }
  trace::ScopedSpan span(trace::Stage::kNandPartialProgram, trace::Op::kWrite,
                         span_key(block, page));
  FaultDecision fd;
  if (fault_) fd = consult_fault(FaultOp::kPartialProgram, block, page);
  const double frac =
      fd.interrupts() ? std::clamp(fd.completed_fraction, 0.0, 1.0) : 1.0;
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  ++blk.epoch;
  const kernels::DrawKey key = kernels::derive_key(
      seed_, kernels::Op::kPartialStep, block, page, blk.epoch);
  float* row =
      blk.v.data() + static_cast<std::size_t>(page) * geom_.cells_per_page;
  for (std::uint32_t c : cells) {
    if (c >= geom_.cells_per_page) {
      return {ErrorCode::kOutOfBounds, "cell index outside page"};
    }
    const double speed = effective_speed(block, page, c);
    // A truncated step deposits only `frac` of its charge.  The increment
    // is keyed on the cell index, so the cell list's order (or chunking
    // across threads) cannot change any cell's draw.
    const double inc =
        frac * std::max(0.0, kernels::normal_at(
                                 key, c, 0,
                                 noise_.pp_step_mu * speed * step_scale,
                                 noise_.pp_step_sigma * step_scale));
    row[c] = static_cast<float>(std::clamp(row[c] + inc, 0.0, kVmax));
  }
  // An aborted program still stresses neighbouring wordlines, just far
  // less than a full program pass (the charge pump aborts early).
  disturb_neighbors(blk, block, page, 0.02 * frac);

  charge(costs_.partial_program_us, costs_.partial_program_uj);
  span.set_cost_us(costs_.partial_program_us);
  span.set_status(static_cast<std::uint8_t>(
      fd.power_cut ? ErrorCode::kPowerLoss
      : fd.fail    ? ErrorCode::kProgramFail
                   : ErrorCode::kOk));
  ledger_->partial_programs.fetch_add(1, std::memory_order_relaxed);
  chip_telemetry().partial_programs.inc();
  if (fd.power_cut) {
    return {ErrorCode::kPowerLoss, "power lost during partial program"};
  }
  if (fd.fail) {
    return {ErrorCode::kProgramFail, "partial program reported status failure"};
  }
  return Status::ok();
}

Status FlashChip::fine_program(std::uint32_t block, std::uint32_t page,
                               std::span<const std::uint32_t> cells,
                               double target_mu, double target_sigma,
                               double target_tail) {
  STASH_RETURN_IF_ERROR(check_addr(block, page));
  trace::ScopedSpan span(trace::Stage::kNandFineProgram, trace::Op::kWrite,
                         span_key(block, page));
  FaultDecision fd;
  if (fault_) fd = consult_fault(FaultOp::kFineProgram, block, page);
  const double frac =
      fd.interrupts() ? std::clamp(fd.completed_fraction, 0.0, 1.0) : 1.0;
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  ++blk.epoch;
  const kernels::DrawKey key = kernels::derive_key(
      seed_, kernels::Op::kFineTarget, block, page, blk.epoch);
  float* row =
      blk.v.data() + static_cast<std::size_t>(page) * geom_.cells_per_page;
  for (std::uint32_t c : cells) {
    if (c >= geom_.cells_per_page) {
      return {ErrorCode::kOutOfBounds, "cell index outside page"};
    }
    double target = kernels::normal_at(key, c, 0, target_mu, target_sigma);
    if (target_tail > 0.0) {
      target += kernels::exponential_at(key, c, 1, target_tail);
    }
    // The precise pass never drives an erased-level cell anywhere near the
    // read window — cap at the erased-state ceiling (cf. redraw_page_erased)
    // so hidden cells remain cleanly inside the non-programmed band.
    target = std::min(target, 80.0);
    const double full =
        std::clamp(std::max(static_cast<double>(row[c]), target), 0.0, kVmax);
    row[c] = static_cast<float>(row[c] + (full - row[c]) * frac);
  }
  disturb_neighbors(blk, block, page, 0.01 * frac);

  charge(costs_.partial_program_us, costs_.partial_program_uj);
  span.set_cost_us(costs_.partial_program_us);
  span.set_status(static_cast<std::uint8_t>(
      fd.power_cut ? ErrorCode::kPowerLoss
      : fd.fail    ? ErrorCode::kProgramFail
                   : ErrorCode::kOk));
  ledger_->partial_programs.fetch_add(1, std::memory_order_relaxed);
  chip_telemetry().partial_programs.inc();
  chip_telemetry().fine_programs.inc();
  if (fd.power_cut) {
    return {ErrorCode::kPowerLoss, "power lost during fine program"};
  }
  if (fd.fail) {
    return {ErrorCode::kProgramFail, "fine program reported status failure"};
  }
  return Status::ok();
}

Status FlashChip::stress_cells(std::uint32_t block, std::uint32_t page,
                               std::span<const std::uint32_t> cells,
                               std::uint32_t cycles) {
  STASH_RETURN_IF_ERROR(check_addr(block, page));
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  for (std::uint32_t c : cells) {
    if (c >= geom_.cells_per_page) {
      return {ErrorCode::kOutOfBounds, "cell index outside page"};
    }
    const std::uint64_t key =
        static_cast<std::uint64_t>(page) * geom_.cells_per_page + c;
    blk.stress[key] += static_cast<float>(cycles);
  }
  // Ledger: PT-HI pays one program per stress cycle on this page.
  charge(costs_.program_us * cycles, costs_.program_uj * cycles);
  ledger_->programs.fetch_add(cycles, std::memory_order_relaxed);
  chip_telemetry().programs.inc(cycles);
  chip_telemetry().stress_ops.inc();
  return Status::ok();
}

// ---- Disturb ---------------------------------------------------------------

void FlashChip::disturb_neighbors(Block& blk, std::uint32_t block,
                                  std::uint32_t page, double scale) noexcept {
  // Erased-level cells accumulate positive disturb charge (Fig. 2a's
  // partially-charged non-programmed cells); programmed cells suffer rare
  // pass-voltage-assisted charge de-trapping — the mechanism behind the
  // public-BER inflation VT-HI's page interval controls (§6.3; calibrated
  // so interval-0 hiding inflates public BER by roughly the paper's 20%).
  // Draws share the calling operation's epoch; the key's page coordinate is
  // the *disturbed* wordline, so the two neighbours get distinct streams.
  const kernels::DisturbParams params{noise_.disturb_mu * scale,
                                      noise_.disturb_sigma * scale, 90.0,
                                      kVmax};
  const std::uint32_t cells = geom_.cells_per_page;
  for (int d = -1; d <= 1; d += 2) {
    const long npl = static_cast<long>(page) + d;
    if (npl < 0 || npl >= static_cast<long>(geom_.pages_per_block)) continue;
    const auto np = static_cast<std::uint32_t>(npl);
    float* row = blk.v.data() + static_cast<std::size_t>(np) * cells;
    const kernels::DrawKey key = kernels::derive_key(
        seed_, kernels::Op::kDisturb, block, np, blk.epoch);
    kernels::disturb_row(key, params, row, 0, cells);
    // Pass-voltage de-trap: at ~1e-6 per cell it is cheaper to sample the
    // events than to screen every cell, so this uses the read-disturb
    // expected-count scheme.  A victim drawn uniformly but applied only to
    // programmed cells keeps the per-programmed-cell probability at
    // detrap_prob.  NOT scaled by the disturb intensity: de-trapping is
    // triggered by the pass voltage, which every program-class op applies
    // in full.  Sub-streams 2/3/4 are disjoint from the row kernel's pair
    // draws on sub-stream 0.
    const double expected = noise_.detrap_prob * static_cast<double>(cells);
    auto events = static_cast<std::uint32_t>(expected);
    if (kernels::uniform_at(key, 0, 2) < expected - std::floor(expected)) {
      ++events;
    }
    for (std::uint32_t i = 0; i < events; ++i) {
      const auto c = static_cast<std::uint32_t>(
          kernels::bounded(kernels::u64_at(key, i, 3), cells));
      if (row[c] >= 90.0f) {
        const double drop =
            kernels::exponential_at(key, i, 4, noise_.detrap_mean);
        row[c] = static_cast<float>(
            std::max(0.0, static_cast<double>(row[c]) - drop));
      }
    }
  }
}

// ---- Wear and retention -----------------------------------------------------

Status FlashChip::age_cycles(std::uint32_t block, std::uint32_t n,
                             bool charge_ledger) {
  STASH_RETURN_IF_ERROR(check_addr(block, 0));
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  blk.pec += n;
  ++blk.epoch;  // one epoch for the whole fast-forward redraw
  if (charge_ledger) {
    charge(costs_.erase_us * n, costs_.erase_uj * n);
    ledger_->erases.fetch_add(n, std::memory_order_relaxed);
    chip_telemetry().erases.inc(n);
  }
  // Equivalent end state of n random-data cycles: block left erased.
  blk.next_program_page = 0;
  for (std::uint32_t p = 0; p < geom_.pages_per_block; ++p) {
    blk.state[p] = PageState::kErased;
    blk.age_hours[p] = 0.0f;
    redraw_page_erased(blk, block, p);
  }
  return Status::ok();
}

void FlashChip::leak_page(Block& blk, std::uint32_t block, std::uint32_t page,
                          double hours) noexcept {
  const double t0 = blk.age_hours[page];
  const double t1 = t0 + hours;
  const double df = std::log1p(t1 / noise_.leak_tau_hours) -
                    std::log1p(t0 / noise_.leak_tau_hours);
  const double kpec = static_cast<double>(blk.pec) / 1000.0;
  const double wear_accel = noise_.leak_wear_base + kpec * kpec;
  const double base = noise_.leak_rate * df * wear_accel;
  blk.age_hours[page] = static_cast<float>(t1);
  if (base <= 0.0) return;

  // Stateless per-cell leak factors (manufacturing traits) — retention
  // draws no fresh randomness, so there is no epoch here.
  float* row =
      blk.v.data() + static_cast<std::size_t>(page) * geom_.cells_per_page;
  kernels::leak_row(seed_, block, page, base, noise_.leak_floor,
                    noise_.leak_cell_sigma, row, 0, geom_.cells_per_page);
}

void FlashChip::bake_block(std::uint32_t block, double hours) {
  if (!check_addr(block, 0).is_ok() || hours <= 0.0) return;
  const std::lock_guard<std::mutex> lock(block_lock(block));
  Block& blk = touch(block);
  for (std::uint32_t p = 0; p < geom_.pages_per_block; ++p) {
    leak_page(blk, block, p, hours);
  }
}

void FlashChip::bake(double hours) {
  for (std::uint32_t b = 0; b < geom_.blocks; ++b) {
    if (blocks_[b]) bake_block(b, hours);
  }
}

std::uint32_t FlashChip::pec(std::uint32_t block) const {
  const Block* blk = peek(block);
  return blk ? blk->pec : 0;
}

PageState FlashChip::page_state(std::uint32_t block, std::uint32_t page) const {
  const Block* blk = peek(block);
  if (!blk || page >= geom_.pages_per_block) return PageState::kErased;
  return blk->state[page];
}

// ---- Introspection -----------------------------------------------------------

util::Histogram FlashChip::voltage_histogram(std::uint32_t block,
                                             std::size_t bins) const {
  util::Histogram h(0.0, 256.0, bins);
  const Block* blk = peek(block);
  if (!blk) return h;
  for (float v : blk->v) h.add(static_cast<double>(v));
  return h;
}

util::Histogram FlashChip::page_voltage_histogram(std::uint32_t block,
                                                  std::uint32_t page,
                                                  std::size_t bins) const {
  util::Histogram h(0.0, 256.0, bins);
  const Block* blk = peek(block);
  if (!blk || page >= geom_.pages_per_block) return h;
  const float* row =
      blk->v.data() + static_cast<std::size_t>(page) * geom_.cells_per_page;
  for (std::uint32_t c = 0; c < geom_.cells_per_page; ++c) {
    h.add(static_cast<double>(row[c]));
  }
  return h;
}

std::vector<std::vector<std::uint8_t>> FlashChip::program_block_random(
    std::uint32_t block, std::uint64_t data_seed) {
  std::vector<std::vector<std::uint8_t>> written;
  written.reserve(geom_.pages_per_block);
  Xoshiro256 data_rng(hash_words(data_seed, block));
  for (std::uint32_t p = 0; p < geom_.pages_per_block; ++p) {
    std::vector<std::uint8_t> bits(geom_.cells_per_page);
    for (auto& b : bits) b = static_cast<std::uint8_t>(data_rng() & 1);
    if (Status s = program_page(block, p, bits); !s.is_ok()) {
      written.clear();
      return written;
    }
    written.push_back(std::move(bits));
  }
  return written;
}

void FlashChip::drop_block(std::uint32_t block) {
  if (block < blocks_.size()) {
    const std::lock_guard<std::mutex> lock(block_lock(block));
    blocks_[block].reset();
  }
}

void FlashChip::drop_all_blocks() {
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) drop_block(b);
}

// ---- Persistence -----------------------------------------------------------

bool FlashChip::block_allocated(std::uint32_t block) const {
  return peek(block) != nullptr;
}

Status FlashChip::serialize_block(std::uint32_t block,
                                  std::vector<std::uint8_t>& out) const {
  STASH_RETURN_IF_ERROR(check_addr(block, 0));
  const std::lock_guard<std::mutex> lock(block_lock(block));
  const Block* blk = peek(block);
  if (!blk) return {ErrorCode::kNotFound, "block not allocated"};

  util::ByteWriter w(out);
  w.u32(blk->pec);
  w.u32(blk->next_program_page);
  w.u64(blk->epoch);
  for (const PageState s : blk->state) w.u8(static_cast<std::uint8_t>(s));
  for (const float a : blk->age_hours) w.f32(a);
  for (const float v : blk->v) w.f32(v);
  // The stress map is unordered in memory; emit it sorted by cell key so
  // the byte image is canonical (the threads-8 == threads-1 snapshot gate
  // depends on this).
  std::vector<std::pair<std::uint64_t, float>> stress(blk->stress.begin(),
                                                      blk->stress.end());
  std::sort(stress.begin(), stress.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(stress.size());
  for (const auto& [key, value] : stress) {
    w.u64(key);
    w.f32(value);
  }
  return Status::ok();
}

Status FlashChip::deserialize_block(std::uint32_t block,
                                    std::span<const std::uint8_t> bytes) {
  STASH_RETURN_IF_ERROR(check_addr(block, 0));
  const std::size_t pages = geom_.pages_per_block;
  const std::size_t cells =
      static_cast<std::size_t>(pages) * geom_.cells_per_page;

  util::ByteReader r(bytes);
  auto fresh = std::make_unique<Block>();
  STASH_RETURN_IF_ERROR(r.u32(fresh->pec));
  STASH_RETURN_IF_ERROR(r.u32(fresh->next_program_page));
  STASH_RETURN_IF_ERROR(r.u64(fresh->epoch));
  if (fresh->next_program_page > pages) {
    return {ErrorCode::kCorrupted, "program cursor beyond block"};
  }
  fresh->state.resize(pages);
  for (std::size_t p = 0; p < pages; ++p) {
    std::uint8_t s = 0;
    STASH_RETURN_IF_ERROR(r.u8(s));
    if (s > static_cast<std::uint8_t>(PageState::kProgrammed)) {
      return {ErrorCode::kCorrupted, "invalid page state"};
    }
    fresh->state[p] = static_cast<PageState>(s);
  }
  fresh->age_hours.resize(pages);
  for (std::size_t p = 0; p < pages; ++p) {
    STASH_RETURN_IF_ERROR(r.f32(fresh->age_hours[p]));
  }
  fresh->v.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    STASH_RETURN_IF_ERROR(r.f32(fresh->v[c]));
  }
  std::uint64_t stress_count = 0;
  STASH_RETURN_IF_ERROR(r.u64(stress_count));
  if (stress_count > cells) {
    return {ErrorCode::kCorrupted, "stress entries exceed cell count"};
  }
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < stress_count; ++i) {
    std::uint64_t key = 0;
    float value = 0.0f;
    STASH_RETURN_IF_ERROR(r.u64(key));
    STASH_RETURN_IF_ERROR(r.f32(value));
    if (key >= cells || (i > 0 && key <= prev_key)) {
      return {ErrorCode::kCorrupted, "stress keys out of order or range"};
    }
    prev_key = key;
    fresh->stress.emplace(key, value);
  }
  STASH_RETURN_IF_ERROR(r.expect_exhausted());

  const std::lock_guard<std::mutex> lock(block_lock(block));
  blocks_[block] = std::move(fresh);
  return Status::ok();
}

void FlashChip::serialize_meta(std::vector<std::uint8_t>& out) const {
  util::ByteWriter w(out);
  w.u64(ledger_->time_ns.load(std::memory_order_relaxed));
  w.u64(ledger_->energy_nj.load(std::memory_order_relaxed));
  w.u64(ledger_->reads.load(std::memory_order_relaxed));
  w.u64(ledger_->programs.load(std::memory_order_relaxed));
  w.u64(ledger_->erases.load(std::memory_order_relaxed));
  w.u64(ledger_->partial_programs.load(std::memory_order_relaxed));
}

Status FlashChip::deserialize_meta(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  std::uint64_t v[6] = {};
  for (auto& field : v) STASH_RETURN_IF_ERROR(r.u64(field));
  STASH_RETURN_IF_ERROR(r.expect_exhausted());
  ledger_->time_ns.store(v[0], std::memory_order_relaxed);
  ledger_->energy_nj.store(v[1], std::memory_order_relaxed);
  ledger_->reads.store(v[2], std::memory_order_relaxed);
  ledger_->programs.store(v[3], std::memory_order_relaxed);
  ledger_->erases.store(v[4], std::memory_order_relaxed);
  ledger_->partial_programs.store(v[5], std::memory_order_relaxed);
  return Status::ok();
}

std::uint64_t FlashChip::state_digest() const {
  std::vector<std::uint8_t> scratch;
  serialize_meta(scratch);
  std::uint64_t h = util::fnv1a(scratch);
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (!block_allocated(b)) continue;
    scratch.clear();
    util::ByteWriter(scratch).u32(b);
    (void)serialize_block(b, scratch);
    h = util::fnv1a(scratch, h);
  }
  return h;
}

}  // namespace stash::nand
