#pragma once
#include <cstdint>
// Noise-model parameters for the voltage-level NAND simulator.  Every
// constant models a phenomenon the paper's §4 characterization identifies;
// DESIGN.md §4 records how the defaults were calibrated against the paper's
// figures.  Voltages are in the tester's normalized units [0, 255].

#include "stash/util/status.hpp"

namespace stash::nand {

struct NoiseModel {
  /// Noise-model version.  Golden values and figure benches are keyed on
  /// this: bump it whenever a change alters the drawn voltages.
  ///   v1 — sequential per-block xoshiro noise stream.
  ///   v2 — counter-based per-cell draws (stash::kernels Philox): every
  ///        draw is a pure function of (seed, op, block, page, epoch, cell),
  ///        so results are identical for any thread count and SIMD width.
  static constexpr int kVersion = 2;

  // ---- Erased ('1') state ------------------------------------------------
  /// Chip-family mean of the erased-state measured voltage.  Together with
  /// ~+1.2 of accumulated program disturb this puts the bulk of
  /// "non-programmed" cells around level 21 in a written block, leaving
  /// ~0.5% of them naturally above the level-34 hiding threshold — the
  /// §6.3 census ("a minimum of 700 cells" per 144384-cell page).
  double erased_mu = 20.0;
  /// Per-cell programming/readout noise around the page mean.
  double erased_cell_sigma = 3.2;
  /// Occasional heavy right tail (gives Fig. 2a its 40-70 reach and the
  /// natural population of erased cells above the hiding threshold).
  double erased_tail_prob = 0.025;
  double erased_tail_mean = 7.5;
  /// Lognormal spread of the tail mass across blocks/pages (§4: error and
  /// distribution characteristics vary noticeably between hardware units).
  /// This unit-to-unit variance is what gives the hidden-cell population
  /// its cover: the mass VT-HI adds above the threshold stays within the
  /// natural block-to-block spread of that same tail.
  double tail_block_sigma = 1.00;
  double tail_page_sigma = 0.35;
  /// Per-block lognormal spread of the tail decay length (units vary in
  /// shape, not just mass).
  double tail_mean_block_sigma = 0.20;
  /// Wear-induced right shift of the erased state, units per 1000 PEC.
  double erased_wear_shift_per_kpec = 0.5;

  // ---- Programmed ('0') state ---------------------------------------------
  double prog_mu = 163.0;
  double prog_cell_sigma = 7.5;
  /// Wear-induced right shift of the programmed state (Fig. 3b).
  double prog_wear_shift_per_kpec = 2.2;
  /// Wear-induced distribution widening, sigma units per 1000 PEC.
  double wear_sigma_per_kpec = 1.0;
  /// Rare weak cells that program low (dominate fresh-chip public BER).
  double weak_cell_prob = 1e-4;
  double weak_cell_mu = 136.0;
  double weak_cell_sigma = 6.0;

  // ---- Manufacturing variation (§4: chip/block/page-level differences) ----
  double chip_mu_sigma = 1.2;
  double block_mu_sigma = 1.0;
  double page_mu_sigma = 1.2;
  /// Per-cell program-speed spread (multiplier sigma around 1.0); the trait
  /// PT-HI's covert channel is built on.
  double cell_speed_sigma = 0.06;
  /// How much extra program stress shifts a cell's speed (PT-HI encoding).
  double stress_speed_shift_per_kcycle = 0.45;
  /// Random program-speed drift accumulated with wear (sigma per 1000 PEC,
  /// linear in PEC).  This is what makes PT-HI's covert channel decay after
  /// a few hundred public P/E cycles (§2, §8).
  double speed_wear_sigma = 0.15;

  // ---- Partial programming (§6.2: coarse, imprecise) ----------------------
  double pp_step_mu = 5.5;
  double pp_step_sigma = 3.0;
  /// Program-disturb applied to erased cells on adjacent wordlines per PP
  /// or program operation on a page.
  double disturb_mu = 0.6;
  double disturb_sigma = 0.5;
  /// Zero-mean jitter disturb on programmed neighbours.
  double disturb_prog_sigma = 0.5;

  /// Pass-voltage-assisted charge de-trapping on programmed neighbours: the
  /// rare per-cell probability and the exponential mean of the voltage drop
  /// (the mechanism behind the public-BER inflation VT-HI's page interval
  /// controls, §6.3).  Unlike the erased-cell disturb above these are NOT
  /// scaled by the per-op disturb intensity — de-trapping is triggered by
  /// the pass voltage, which every program-class operation applies in full.
  double detrap_prob = 1.2e-6;
  double detrap_mean = 15.0;

  // ---- Read disturb --------------------------------------------------------
  double read_disturb_prob = 2e-5;   // per erased cell per read
  double read_disturb_mu = 0.30;
  /// Spread of the per-event disturb charge around read_disturb_mu.
  double read_disturb_sigma = 0.2;

  // ---- Retention (charge leakage; calibrated against Fig. 11) -------------
  /// v -= leak_rate * sqrt(v - leak_floor) * dlog1p(t/tau) * wear_accel(pec)
  double leak_rate = 0.0052;
  double leak_floor = 12.0;
  double leak_tau_hours = 24.0;
  /// wear_accel = leak_wear_base + (pec/1000)^2 — fresh cells barely leak,
  /// worn cells leak fast (trapped-charge assisted leakage, §8).
  double leak_wear_base = 0.05;
  /// Per-cell leak-factor spread (lognormal sigma).
  double leak_cell_sigma = 0.30;

  // ---- Read reference thresholds -------------------------------------------
  /// SLC public read reference (between erased and programmed states).
  double public_read_vref = 127.0;

  /// Uniform config contract (see FtlConfig::validate): checked by the
  /// FlashChip construction entry point, which throws std::invalid_argument
  /// on a non-OK status.
  [[nodiscard]] util::Status validate() const {
    using util::ErrorCode;
    using util::Status;
    const auto bad = [](const char* msg) {
      return Status{ErrorCode::kInvalidArgument, msg};
    };
    // Level means and the read reference must sit on the tester's scale.
    const struct { double v; const char* name; } levels[] = {
        {erased_mu, "NoiseModel: erased_mu must be in [0, 255]"},
        {prog_mu, "NoiseModel: prog_mu must be in [0, 255]"},
        {weak_cell_mu, "NoiseModel: weak_cell_mu must be in [0, 255]"},
    };
    for (const auto& l : levels) {
      if (!(l.v >= 0.0) || l.v > 255.0) return bad(l.name);
    }
    if (!(public_read_vref > 0.0) || public_read_vref >= 255.0) {
      return bad("NoiseModel: public_read_vref must be in (0, 255)");
    }
    // Spreads must be non-negative (zero = phenomenon disabled).
    const struct { double v; const char* name; } sigmas[] = {
        {erased_cell_sigma, "NoiseModel: erased_cell_sigma must be >= 0"},
        {tail_block_sigma, "NoiseModel: tail_block_sigma must be >= 0"},
        {tail_page_sigma, "NoiseModel: tail_page_sigma must be >= 0"},
        {tail_mean_block_sigma,
         "NoiseModel: tail_mean_block_sigma must be >= 0"},
        {prog_cell_sigma, "NoiseModel: prog_cell_sigma must be >= 0"},
        {wear_sigma_per_kpec, "NoiseModel: wear_sigma_per_kpec must be >= 0"},
        {weak_cell_sigma, "NoiseModel: weak_cell_sigma must be >= 0"},
        {chip_mu_sigma, "NoiseModel: chip_mu_sigma must be >= 0"},
        {block_mu_sigma, "NoiseModel: block_mu_sigma must be >= 0"},
        {page_mu_sigma, "NoiseModel: page_mu_sigma must be >= 0"},
        {cell_speed_sigma, "NoiseModel: cell_speed_sigma must be >= 0"},
        {speed_wear_sigma, "NoiseModel: speed_wear_sigma must be >= 0"},
        {pp_step_sigma, "NoiseModel: pp_step_sigma must be >= 0"},
        {disturb_sigma, "NoiseModel: disturb_sigma must be >= 0"},
        {disturb_prog_sigma, "NoiseModel: disturb_prog_sigma must be >= 0"},
        {read_disturb_sigma, "NoiseModel: read_disturb_sigma must be >= 0"},
        {leak_cell_sigma, "NoiseModel: leak_cell_sigma must be >= 0"},
    };
    for (const auto& s : sigmas) {
      if (!(s.v >= 0.0)) return bad(s.name);
    }
    // Probabilities.
    const struct { double v; const char* name; } probs[] = {
        {erased_tail_prob, "NoiseModel: erased_tail_prob must be in [0, 1]"},
        {weak_cell_prob, "NoiseModel: weak_cell_prob must be in [0, 1]"},
        {detrap_prob, "NoiseModel: detrap_prob must be in [0, 1]"},
        {read_disturb_prob,
         "NoiseModel: read_disturb_prob must be in [0, 1]"},
    };
    for (const auto& p : probs) {
      if (!(p.v >= 0.0) || p.v > 1.0) return bad(p.name);
    }
    // Non-negative magnitudes and rates.
    const struct { double v; const char* name; } mags[] = {
        {erased_tail_mean, "NoiseModel: erased_tail_mean must be >= 0"},
        {detrap_mean, "NoiseModel: detrap_mean must be >= 0"},
        {read_disturb_mu, "NoiseModel: read_disturb_mu must be >= 0"},
        {leak_rate, "NoiseModel: leak_rate must be >= 0"},
        {leak_floor, "NoiseModel: leak_floor must be >= 0"},
        {leak_wear_base, "NoiseModel: leak_wear_base must be >= 0"},
    };
    for (const auto& m : mags) {
      if (!(m.v >= 0.0)) return bad(m.name);
    }
    if (!(leak_tau_hours > 0.0)) {
      return bad("NoiseModel: leak_tau_hours must be > 0");
    }
    return Status::ok();
  }

  /// Defaults above model the paper's primary ("vendor A") chip family.
  [[nodiscard]] static NoiseModel vendor_a() noexcept { return {}; }

  /// Second-vendor chip: same physics, different constants (§8
  /// applicability).  Slightly hotter programming, wider pages, weaker
  /// disturb isolation.
  [[nodiscard]] static NoiseModel vendor_b() noexcept {
    NoiseModel m;
    m.erased_mu = 21.5;
    m.erased_cell_sigma = 3.6;
    m.erased_tail_prob = 0.03;
    m.erased_tail_mean = 6.0;
    m.prog_mu = 168.0;
    m.prog_cell_sigma = 8.5;
    m.page_mu_sigma = 1.8;
    m.pp_step_mu = 6.0;
    m.pp_step_sigma = 2.8;
    m.disturb_mu = 1.2;
    m.leak_rate = 0.0060;
    return m;
  }
};

/// Per-operation latency (µs) and energy (µJ), from the paper §6.1/§8.
struct OpCosts {
  double read_us = 90.0;
  double program_us = 1200.0;
  double erase_us = 5000.0;
  double partial_program_us = 600.0;  // PROGRAM aborted midway (§8 arithmetic)

  double read_uj = 50.0;
  double program_uj = 68.0;
  double erase_uj = 190.0;
  double partial_program_uj = 34.0;  // half an aborted program
};

/// Accumulated cost of the operations issued against a chip.
struct CostLedger {
  double time_us = 0.0;
  double energy_uj = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  std::uint64_t partial_programs = 0;

  void clear() noexcept { *this = CostLedger{}; }
};

}  // namespace stash::nand
