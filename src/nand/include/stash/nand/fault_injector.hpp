#pragma once
// Fault-injection hook points for the NAND simulator.
//
// Real NAND fails in ways the noise model alone cannot express: PROGRAM and
// ERASE report status failures, blocks grow bad in the field, cells get
// stuck, reads glitch transiently, and power can disappear in the middle of
// any multi-step sequence (Cai et al.; Copycat — see PAPERS.md).  FlashChip
// consults an attached FaultInjector once per operation and lets it decide
// whether the operation fails, is truncated by a power cut, or proceeds; a
// second pair of hooks lets the injector corrupt read/probe results after
// the fact (stuck cells, transient glitches).
//
// The interface lives in stash::nand so the chip has no dependency on any
// concrete fault model; stash::fault::FaultPlan is the deterministic,
// seedable implementation the tests and benches use.

#include <cstdint>
#include <span>

namespace stash::nand {

/// The operation classes an injector can veto.
enum class FaultOp : std::uint8_t {
  kProgram,
  kErase,
  kRead,            // read_page / read_page_at / probe_voltages
  kPartialProgram,  // the PROGRAM->RESET step (and stress passes)
  kFineProgram,
};

/// What the injector decided for one operation.
struct FaultDecision {
  /// Operation reports a status failure (kProgramFail / kEraseFail).
  bool fail = false;
  /// Power was lost during the operation: the op is truncated and the
  /// device stays dark (every later op fails) until power returns.
  bool power_cut = false;
  /// Fraction of the interrupted operation's physical effect that was
  /// applied before it stopped (partial charge on a program, partially
  /// erased pages on an erase).  Only meaningful when fail or power_cut.
  double completed_fraction = 0.0;

  [[nodiscard]] bool interrupts() const noexcept { return fail || power_cut; }
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Consulted once per chip operation, before it executes.
  virtual FaultDecision on_operation(FaultOp op, std::uint32_t block,
                                     std::uint32_t page) = 0;

  /// Corrupt the logical bits of a completed read (stuck cells, glitches).
  /// `vref` is the reference voltage the read used.
  virtual void corrupt_read(std::uint32_t block, std::uint32_t page,
                            std::span<std::uint8_t> bits, double vref) {
    (void)block;
    (void)page;
    (void)bits;
    (void)vref;
  }

  /// Corrupt the voltages of a completed probe.
  virtual void corrupt_probe(std::uint32_t block, std::uint32_t page,
                             std::span<int> volts) {
    (void)block;
    (void)page;
    (void)volts;
  }
};

}  // namespace stash::nand
