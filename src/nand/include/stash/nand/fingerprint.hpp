#pragma once
// Device fingerprinting from flash process variation (paper §2/§9.1: the
// same low-level variability VT-HI hides in has been used to derive unique,
// unclonable device fingerprints for authentication — Wang et al. '12,
// Prabhu et al. '11).  The fingerprint digests *stable manufacturing
// structure* (per-page mean offsets and per-cell program-speed ordering),
// not transient voltages, so it survives erases, rewrites, and wear.

#include <array>
#include <cstdint>
#include <vector>

#include "stash/nand/chip.hpp"

namespace stash::nand {

struct FingerprintConfig {
  /// Blocks sampled (low block numbers exist on every geometry).
  std::uint32_t blocks = 2;
  /// Pages sampled per block.
  std::uint32_t pages_per_block = 4;
  /// Cells compared per page for the speed-ordering bits.
  std::uint32_t cells_per_page = 256;
  /// Measurements averaged per page to push readout noise below the
  /// manufacturing signal.
  int reads = 4;
};

/// A 256-bit device fingerprint plus the raw feature vector it was derived
/// from (useful for fuzzy matching across heavy wear).
struct DeviceFingerprint {
  std::array<std::uint8_t, 32> id{};
  std::vector<std::uint8_t> feature_bits;

  /// Fraction of differing feature bits against another fingerprint taken
  /// with the same configuration (0 = same device, ~0.5 = different).
  [[nodiscard]] double distance(const DeviceFingerprint& other) const;
};

/// Extract a fingerprint.  Reads (probes) the sampled pages; the chip must
/// allow erasing the sampled blocks (they are erased first so every device
/// is measured in the same state).
[[nodiscard]] DeviceFingerprint fingerprint_device(
    FlashChip& chip, const FingerprintConfig& config = {});

}  // namespace stash::nand
