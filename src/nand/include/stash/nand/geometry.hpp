#pragma once
// Chip geometry descriptions.  The paper's primary test chip (§6.1) is a
// 1x-nm planar MLC package: 8 GB, 2048 blocks, 256 pages/block (128 lower +
// 128 upper), 18048-byte pages, 3000 PEC rated lifetime.  The applicability
// chip (§8) is a 16 GB model from a second vendor with 2096 blocks and
// 18256-byte pages.

#include <cstdint>

namespace stash::nand {

struct Geometry {
  std::uint32_t blocks = 64;
  std::uint32_t pages_per_block = 64;
  /// One public (SLC-style) bit per cell; 18048-byte page = 144384 cells.
  std::uint32_t cells_per_page = 4096;
  /// Rated program/erase cycles before the block is considered worn out.
  std::uint32_t pec_limit = 3000;
  /// Real NAND requires pages within a block to be programmed in order.
  bool enforce_sequential_program = true;

  [[nodiscard]] std::uint64_t total_cells() const noexcept {
    return static_cast<std::uint64_t>(blocks) * pages_per_block * cells_per_page;
  }

  /// The paper's primary chip model, full scale.
  [[nodiscard]] static Geometry vendor_a() noexcept {
    return {.blocks = 2048,
            .pages_per_block = 256,
            .cells_per_page = 144384,
            .pec_limit = 3000,
            .enforce_sequential_program = true};
  }

  /// Second-vendor chip used for the §8 applicability experiment.
  [[nodiscard]] static Geometry vendor_b() noexcept {
    return {.blocks = 2096,
            .pages_per_block = 256,
            .cells_per_page = 146048,  // 18256-byte pages
            .pec_limit = 3000,
            .enforce_sequential_program = true};
  }

  /// Scaled experiment geometry: paper page width divided by `divisor`,
  /// with the 64-pages/block figure the paper itself uses in its §8
  /// throughput arithmetic.  divisor=1 reproduces the full page width.
  [[nodiscard]] static Geometry experiment(std::uint32_t divisor = 4,
                                           std::uint32_t blocks = 64) noexcept {
    return {.blocks = blocks,
            .pages_per_block = 64,
            .cells_per_page = 144384 / (divisor == 0 ? 1 : divisor),
            .pec_limit = 3000,
            .enforce_sequential_program = true};
  }

  /// Tiny geometry for unit tests.
  [[nodiscard]] static Geometry tiny() noexcept {
    return {.blocks = 8,
            .pages_per_block = 8,
            .cells_per_page = 2048,
            .pec_limit = 3000,
            .enforce_sequential_program = true};
  }
};

/// Flat page address within a chip.
struct PageAddr {
  std::uint32_t block = 0;
  std::uint32_t page = 0;

  bool operator==(const PageAddr&) const = default;
  auto operator<=>(const PageAddr&) const = default;
};

}  // namespace stash::nand
