#pragma once
// FlashChip: a cell-accurate, voltage-level NAND flash simulator.
//
// This is the substitute for the paper's real 1x-nm MLC packages + SigNAS-II
// tester (DESIGN.md §1).  Every cell carries a continuous threshold voltage
// on the tester's normalized 0-255 scale; operations reproduce the §4 noise
// phenomenology: programming noise, manufacturing variation at chip / block
// / page / cell granularity, program disturb, wear-induced right shift, and
// retention charge leakage.
//
// Standard (ONFI-available) operations: erase_block, program_page,
// read_page.  Vendor operations the paper obtained under NDA:
// read_page_at (shifted reference read), probe_voltages (per-cell voltage
// measurement), partial_program (PROGRAM aborted midway), and fine_program
// (the controller-internal precise pass §6.2 argues vendors could expose).
//
// Blocks are lazily allocated: a full-geometry "8 GB" chip only pays for
// blocks that are touched.
//
// Concurrency contract (stash::par builds on this):
//   * Noise draws are counter-based (stash::kernels Philox): every draw is
//     a pure function of (serial seed, op kind, block, page, per-block op
//     epoch, cell index).  Every mutating operation touches only the
//     addressed block, so operations on DISTINCT blocks may run
//     concurrently from any threads and still produce byte-identical
//     per-block voltages — regardless of how the operations interleave
//     across blocks, of thread count, and of SIMD lane width.
//   * Operations on the SAME block are serialized by an internal striped
//     lock (no data races), but their relative order determines the
//     block's epoch sequence: callers that need reproducibility must
//     submit same-block operations in a deterministic order (stash::par's
//     shard queues do exactly this).  Within one operation, per-cell draws
//     are order-independent by construction.
//   * The cost ledger accumulates in fixed-point atomics, so totals are
//     exact and thread-count independent.
//   * Whole-chip sweeps (bake(), voltage_histogram(), program_block_random)
//     and accessors returning raw state assume no concurrent mutation of
//     the blocks they visit.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "stash/nand/fault_injector.hpp"
#include "stash/nand/geometry.hpp"
#include "stash/nand/noise.hpp"
#include "stash/util/histogram.hpp"
#include "stash/util/rng.hpp"
#include "stash/util/status.hpp"

namespace stash::nand {

using util::Status;

enum class PageState : std::uint8_t { kErased, kProgrammed };

class FlashChip {
 public:
  /// Throws std::invalid_argument if noise.validate() is non-OK (uniform
  /// config contract).
  FlashChip(const Geometry& geometry, const NoiseModel& noise,
            std::uint64_t serial_seed, OpCosts costs = OpCosts{});

  FlashChip(const FlashChip&) = delete;
  FlashChip& operator=(const FlashChip&) = delete;
  FlashChip(FlashChip&&) = default;
  FlashChip& operator=(FlashChip&&) = default;

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] const NoiseModel& noise() const noexcept { return noise_; }
  [[nodiscard]] std::uint64_t serial() const noexcept { return seed_; }

  /// Attach (or detach, with nullptr) a fault injector.  Not owned; must
  /// outlive the chip or be detached first.  Every subsequent operation
  /// consults it before executing.
  void set_fault_injector(FaultInjector* injector) noexcept { fault_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept { return fault_; }

  // ---- Standard flash operations ----------------------------------------

  /// Erase a block: every page returns to the erased state, PEC increments.
  Status erase_block(std::uint32_t block);

  /// Program public data into an erased page.  `bits` holds one value per
  /// cell: 1 = leave erased (logical '1'), 0 = charge (logical '0').
  /// Rejects reprogramming (no in-place updates) and, when the geometry
  /// demands it, out-of-order programming within the block.
  Status program_page(std::uint32_t block, std::uint32_t page,
                      std::span<const std::uint8_t> bits);

  /// Read a page at the standard public reference voltage: 1 below, 0 above.
  [[nodiscard]] std::vector<std::uint8_t> read_page(std::uint32_t block,
                                                    std::uint32_t page);

  /// Allocation-free variant: threshold the page straight into a caller
  /// buffer of at least cells_per_page bytes (the zero-copy read path
  /// writes into an arena slab here).  Returns the cells written — 0 on a
  /// bad address or an interrupting injected fault, reproducing
  /// read_page's empty-vector observable.  Same noise, ledger costs, and
  /// telemetry as read_page.
  std::size_t read_page_into(std::uint32_t block, std::uint32_t page,
                             std::span<std::uint8_t> out);

  // ---- Vendor operations (NDA commands on real hardware) -----------------

  /// Read with a shifted reference voltage — the command VT-HI's decoder
  /// uses.  Returns 1 for v < vref, 0 for v >= vref, per cell.
  [[nodiscard]] std::vector<std::uint8_t> read_page_at(std::uint32_t block,
                                                       std::uint32_t page,
                                                       double vref);

  /// Allocation-free shifted read (see read_page_into).
  std::size_t read_page_at_into(std::uint32_t block, std::uint32_t page,
                                double vref, std::span<std::uint8_t> out);

  /// Per-cell voltage measurement in the tester's discrete normalized units.
  /// Costs one read operation.
  [[nodiscard]] std::vector<int> probe_voltages(std::uint32_t block,
                                                std::uint32_t page);

  /// Allocation-free variant: quantize the page's voltages into a caller
  /// buffer of exactly cells_per_page entries.  Same semantics and ledger
  /// costs as probe_voltages; hot callers (the VT-HI step loop) reuse one
  /// buffer across probes.
  Status probe_voltages_into(std::uint32_t block, std::uint32_t page,
                             std::span<int> out);

  /// Partial program: a PROGRAM aborted midway (§6.2).  Applies one coarse,
  /// noisy voltage increment to the listed cells and program-disturb to
  /// adjacent wordlines.  Voltage can only increase.  `step_scale`
  /// modulates the increment for earlier/later aborts (1.0 = the nominal
  /// midway abort).
  Status partial_program(std::uint32_t block, std::uint32_t page,
                         std::span<const std::uint32_t> cells,
                         double step_scale = 1.0);

  /// Controller-internal precise programming pass (requires firmware
  /// support; used by the paper's "enhanced capacity" configuration §8).
  /// Each listed cell is charged toward N(target_mu, target_sigma) plus an
  /// optional exponential spread of mean target_tail (lets the hiding
  /// firmware shape the hidden population like the natural voltage tail),
  /// never downward.  Costs one partial-program operation.
  Status fine_program(std::uint32_t block, std::uint32_t page,
                      std::span<const std::uint32_t> cells, double target_mu,
                      double target_sigma, double target_tail = 0.0);

  /// Apply `cycles` of extra program stress to the listed cells (the
  /// physical channel PT-HI encodes in: heavy repeated programming
  /// permanently changes a cell's programming speed).  Charges the ledger
  /// for the equivalent program/erase traffic and wears the block.
  Status stress_cells(std::uint32_t block, std::uint32_t page,
                      std::span<const std::uint32_t> cells,
                      std::uint32_t cycles);

  /// Effective program speed of one cell (manufacturing trait + accumulated
  /// stress).  This is what a PP-race decoder indirectly observes.
  [[nodiscard]] double effective_speed(std::uint32_t block, std::uint32_t page,
                                       std::uint32_t cell) const;

  // ---- Wear and retention -------------------------------------------------

  /// Fast-forward n program/erase cycles on a block (equivalent to cycling
  /// it with random data, without paying the per-cycle simulation cost).
  /// Leaves the block erased.  Pass charge_ledger=true when the cycles are
  /// part of a measured workload (PT-HI's stress encoding) rather than
  /// experiment setup.
  Status age_cycles(std::uint32_t block, std::uint32_t n,
                    bool charge_ledger = false);

  /// Let `hours` of retention time pass for one block or the whole chip.
  /// Charge leaks toward the erased level; leakage accelerates with wear.
  void bake_block(std::uint32_t block, double hours);
  void bake(double hours);

  [[nodiscard]] std::uint32_t pec(std::uint32_t block) const;
  [[nodiscard]] PageState page_state(std::uint32_t block,
                                     std::uint32_t page) const;

  // ---- Introspection -------------------------------------------------------

  /// Voltage histogram of one block or one page over [0, 255] with the given
  /// number of bins; counts every cell.  Does not charge ledger costs (it is
  /// the analysis-side view an attacker or calibration script assembles from
  /// probes).
  [[nodiscard]] util::Histogram voltage_histogram(std::uint32_t block,
                                                  std::size_t bins = 256) const;
  [[nodiscard]] util::Histogram page_voltage_histogram(
      std::uint32_t block, std::uint32_t page, std::size_t bins = 256) const;

  /// Materialized snapshot of the fixed-point atomic ledger.  Safe to call
  /// while operations run on other threads; totals are exact (integer
  /// nanosecond/nanojoule accumulation) and independent of thread count.
  [[nodiscard]] CostLedger ledger() const noexcept;
  void reset_ledger() noexcept;
  /// Raw fixed-point simulated-time total (integer nanoseconds).  Exact,
  /// monotone, and thread-count independent — StashDevice sums these
  /// across chips as its virtual clock for deterministic tracing.
  [[nodiscard]] std::uint64_t time_ns() const noexcept;
  [[nodiscard]] const OpCosts& costs() const noexcept { return costs_; }

  /// Convenience: program every page of a block with pseudorandom data
  /// (what encrypted public data looks like, §4).  Returns the data written.
  std::vector<std::vector<std::uint8_t>> program_block_random(
      std::uint32_t block, std::uint64_t data_seed);

  /// Release the cell arrays of a block (it reads as uninitialized
  /// afterwards).  Lets experiments stream over many blocks without
  /// holding them all in memory.
  void drop_block(std::uint32_t block);
  /// Release every allocated block (snapshot restore starts from a clean
  /// slate before deserializing the saved blocks).
  void drop_all_blocks();

  // ---- Persistence (stash::store) ----------------------------------------
  //
  // Full-state round trip: serialize_meta + serialize_block over every
  // allocated block captures everything a restore needs to reproduce the
  // chip bit-exactly — per-cell voltages, page states, age, sparse stress,
  // per-block RNG epochs, PEC, program cursor, and the cost ledger.  The
  // encoding is canonical (util::wire little-endian; the sparse stress map
  // emitted in key order), so identical logical state always serializes to
  // identical bytes and state_digest() is a meaningful equality gate.

  /// True when `block` has been lazily materialized (has state to save).
  [[nodiscard]] bool block_allocated(std::uint32_t block) const;
  /// Append the canonical serialization of one allocated block.
  /// kOutOfBounds for a bad address, kNotFound for an unallocated block.
  Status serialize_block(std::uint32_t block,
                         std::vector<std::uint8_t>& out) const;
  /// Replace `block`'s state from a serialize_block record (allocating it
  /// if needed).  kCorrupted on any malformed or geometry-mismatched input;
  /// the block is untouched on failure.
  Status deserialize_block(std::uint32_t block,
                           std::span<const std::uint8_t> bytes);
  /// Chip state outside the blocks: the fixed-point cost ledger.
  void serialize_meta(std::vector<std::uint8_t>& out) const;
  Status deserialize_meta(std::span<const std::uint8_t> bytes);
  /// FNV-1a digest over the canonical serialization of the meta record and
  /// every allocated block (in block order).  Bit-exact restore <=> equal
  /// digests; the snapshot tests and the soak harness gate on this.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct Block {
    std::vector<float> v;               // cells_per_page * pages_per_block
    std::vector<PageState> state;       // per page
    std::vector<float> age_hours;       // per page, since last program/erase
    /// Sparse per-cell stress (extra program cycles), keyed by
    /// page * cells_per_page + cell.  Survives erase: it is permanent
    /// physical wear, which is exactly why PT-HI can use it.
    std::unordered_map<std::uint64_t, float> stress;
    /// Per-block operation epoch: incremented once by every noise-drawing
    /// operation and folded into the draw keys, so repeating an op on the
    /// same page yields fresh noise while the draws inside one op stay a
    /// pure function of (seed, op, block, page, epoch, cell) — the
    /// counter-based scheme the concurrency contract in the file header
    /// relies on.
    std::uint64_t epoch = 0;
    std::uint32_t pec = 0;
    std::uint32_t next_program_page = 0;
  };

  /// Fixed-point ledger accumulator: integer adds commute, so the totals a
  /// multi-threaded run reports are bit-identical to a serial run's.
  struct AtomicLedger {
    std::atomic<std::uint64_t> time_ns{0};
    std::atomic<std::uint64_t> energy_nj{0};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> programs{0};
    std::atomic<std::uint64_t> erases{0};
    std::atomic<std::uint64_t> partial_programs{0};
  };

  static constexpr std::size_t kLockStripes = 64;
  [[nodiscard]] std::mutex& block_lock(std::uint32_t block) const noexcept {
    return locks_[block % kLockStripes];
  }
  void charge(double us, double uj) noexcept;
  /// Fault injectors carry chip-wide mutable state (operation counters,
  /// schedules), so every consultation is serialized on a dedicated lock
  /// (the stripe array's extra slot).  Note that fault *decisions* keyed on
  /// global op indices are only reproducible under a deterministic
  /// chip-wide op order — drive fault-injected chips from one shard.
  FaultDecision consult_fault(FaultOp op, std::uint32_t block,
                              std::uint32_t page);

  [[nodiscard]] Status check_addr(std::uint32_t block, std::uint32_t page) const;
  Block& touch(std::uint32_t block);
  [[nodiscard]] const Block* peek(std::uint32_t block) const;

  // Deterministic per-entity manufacturing traits (never stored).
  [[nodiscard]] double chip_mu_offset() const noexcept;
  [[nodiscard]] double block_mu_offset(std::uint32_t block) const noexcept;
  [[nodiscard]] double page_mu_offset(std::uint32_t block,
                                      std::uint32_t page) const noexcept;
  [[nodiscard]] double cell_speed(std::uint32_t block, std::uint32_t page,
                                  std::uint32_t cell) const noexcept;
  [[nodiscard]] bool cell_is_weak(std::uint32_t block, std::uint32_t page,
                                  std::uint32_t cell) const noexcept;
  // (The per-cell leak factor lives in kernels::leak_row now — retention is
  // a stateless trait, computed where it is applied.)

  /// Redraw every cell of a page from the erased-state distribution (used
  /// by block construction, erase, and fast-forward aging).
  void redraw_page_erased(Block& blk, std::uint32_t block,
                          std::uint32_t page) noexcept;
  void disturb_neighbors(Block& blk, std::uint32_t block, std::uint32_t page,
                         double scale) noexcept;
  void leak_page(Block& blk, std::uint32_t block, std::uint32_t page,
                 double hours) noexcept;

  Geometry geom_;
  NoiseModel noise_;
  OpCosts costs_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Block>> blocks_;
  // Heap-held so the defaulted moves stay valid (mutexes and atomics are
  // not movable).  Moving a chip while operations are in flight is UB.
  std::unique_ptr<std::mutex[]> locks_;
  std::unique_ptr<AtomicLedger> ledger_;
  FaultInjector* fault_ = nullptr;
};

}  // namespace stash::nand
