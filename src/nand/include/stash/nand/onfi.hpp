#pragma once
// ONFI-style command interface over FlashChip.
//
// The paper's key practicality claim (§1, §5) is that VT-HI's partial
// programming "requires only standard flash interface commands (i.e.,
// PROGRAM and RESET)": a normal PROGRAM operation is issued and then
// aborted midway with RESET, leaving the selected cells partially charged.
// This facade models that command sequence explicitly — command latch,
// address cycles, data cycles, busy timing, the status register — so the
// hiding algorithms can be driven exactly the way host software would
// drive a raw NAND package through an ONFI bus.
//
// Supported command set (ONFI 1.0 subset + the vendor read-retry command
// every modern chip implements, §5.2):
//   FFh             RESET            (aborts an in-flight program -> PP)
//   90h             READ ID
//   70h             READ STATUS
//   00h..30h        READ PAGE
//   80h..10h        PROGRAM PAGE
//   60h..D0h        ERASE BLOCK
//   EFh (vendor)    SET READ REFERENCE (shifts the read threshold;
//                   feature address 0x89, used by VT-HI's decoder)

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stash/nand/chip.hpp"

namespace stash::telemetry {
class TraceSink;
}  // namespace stash::telemetry

namespace stash::nand {

namespace onfi {
constexpr std::uint8_t kReset = 0xFF;
constexpr std::uint8_t kReadId = 0x90;
constexpr std::uint8_t kReadStatus = 0x70;
constexpr std::uint8_t kRead = 0x00;
constexpr std::uint8_t kReadConfirm = 0x30;
constexpr std::uint8_t kProgram = 0x80;
constexpr std::uint8_t kProgramConfirm = 0x10;
constexpr std::uint8_t kErase = 0x60;
constexpr std::uint8_t kEraseConfirm = 0xD0;
constexpr std::uint8_t kSetFeatures = 0xEF;
/// Feature address for the vendor read-reference-shift command.
constexpr std::uint8_t kFeatureReadReference = 0x89;

// Status-register bits (ONFI 1.0).
constexpr std::uint8_t kStatusFail = 1u << 0;
constexpr std::uint8_t kStatusReady = 1u << 6;
constexpr std::uint8_t kStatusWriteProtectN = 1u << 7;
}  // namespace onfi

/// A NAND package behind an ONFI-ish bus.  Data moves as bytes; each byte
/// carries eight cells' logical bits, MSB first.
class OnfiDevice {
 public:
  explicit OnfiDevice(FlashChip& chip);

  // ---- Bus cycles ---------------------------------------------------------
  void cmd(std::uint8_t opcode);
  void addr(std::uint8_t byte);
  void data_in(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::vector<std::uint8_t> data_out(std::size_t nbytes);

  /// Let the in-flight operation run to completion (tPROG/tBERS elapse).
  void wait_ready();

  /// Abort an in-flight PROGRAM after `fraction` of tPROG has elapsed —
  /// the paper's partial-programming primitive.  A larger fraction leaves
  /// more charge; the chip model applies one coarse PP step scaled by it.
  /// No-op (plain reset) when nothing is in flight.
  void reset_after(double fraction);

  [[nodiscard]] std::uint8_t status() const noexcept { return status_; }
  [[nodiscard]] std::array<std::uint8_t, 5> id() const noexcept;

  /// Human-readable diagnostic for the most recent protocol failure (bad
  /// opcode, address/data cycle outside its phase).  Empty when the last
  /// command sequence was well-formed; cleared when a new sequence starts.
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }

  /// Attach a command tracer: every subsequent cmd() cycle records opcode,
  /// decoded row address, busy time and status into the sink's ring buffer.
  /// Pass nullptr to detach.  While detached, the only cost is one pointer
  /// test per command.
  void set_trace_sink(telemetry::TraceSink* sink) noexcept { trace_ = sink; }
  [[nodiscard]] telemetry::TraceSink* trace_sink() const noexcept {
    return trace_;
  }

  /// Bytes per page on the bus (= cells / 8).
  [[nodiscard]] std::size_t page_bytes() const noexcept {
    return chip_->geometry().cells_per_page / 8;
  }

  // ---- Convenience wrappers (the sequences host software would issue) ----
  // Fallible operations follow the library-wide Status/Result convention:
  // a FAIL status-register bit (or a malformed command sequence) surfaces
  // as a non-OK Status carrying the diagnostic from last_error().
  [[nodiscard]] std::vector<std::uint8_t> read_page(std::uint32_t block,
                                                    std::uint32_t page);
  util::Status program_page(std::uint32_t block, std::uint32_t page,
                            std::span<const std::uint8_t> bytes);
  util::Status erase_block(std::uint32_t block);
  /// PROGRAM ... RESET-midway: partially program the 0-bits of `bytes`.
  util::Status partial_program_page(std::uint32_t block, std::uint32_t page,
                                    std::span<const std::uint8_t> bytes,
                                    double fraction = 0.5);
  /// Vendor feature write: shift the read reference for subsequent READs.
  void set_read_reference(double vref);

 private:
  enum class State : std::uint8_t {
    kIdle,
    kReadAddr,
    kReadData,
    kProgramAddr,
    kProgramData,
    kProgramArmed,    // data latched, waiting for 10h
    kProgramBusy,     // tPROG running; RESET here = partial program
    kEraseAddr,
    kEraseArmed,
    kFeatureAddr,
    kFeatureData,
  };

  struct RowAddress {
    std::uint32_t block = 0;
    std::uint32_t page = 0;
  };

  [[nodiscard]] bool decode_row(RowAddress& out) const;
  /// Status-register verdict of the sequence just issued: OK when the FAIL
  /// bit is clear, otherwise `code` with last_error() (or `fallback`).
  [[nodiscard]] util::Status command_status(util::ErrorCode code,
                                            const char* fallback) const;
  void set_ready(bool ready) noexcept;
  void set_fail(bool fail) noexcept;
  /// set_fail(true) plus a diagnostic message and the onfi.bad_command
  /// counter — for protocol errors as opposed to chip-reported failures.
  void fail_command(std::string message) noexcept;
  void unpack_bits();
  void cmd_impl(std::uint8_t opcode);
  void trace_cmd(std::uint8_t opcode, double busy_us) const;

  FlashChip* chip_;
  telemetry::TraceSink* trace_ = nullptr;
  State state_ = State::kIdle;
  std::uint8_t status_ = onfi::kStatusReady | onfi::kStatusWriteProtectN;
  std::vector<std::uint8_t> addr_bytes_;
  std::vector<std::uint8_t> data_buffer_;   // bytes from/for the bus
  std::vector<std::uint8_t> bit_buffer_;    // unpacked cell bits
  std::vector<std::uint8_t> read_buffer_;
  std::size_t read_pos_ = 0;
  RowAddress armed_row_;
  double read_vref_;
  std::uint8_t feature_addr_ = 0;
  std::string last_error_;
};

}  // namespace stash::nand
