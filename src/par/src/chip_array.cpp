#include "stash/par/chip_array.hpp"

#include "stash/util/rng.hpp"

namespace stash::par {

ChipArray::ChipArray(const nand::Geometry& geometry,
                     const nand::NoiseModel& noise, std::uint64_t root_seed,
                     std::uint32_t chips, ThreadPool& pool,
                     nand::OpCosts costs)
    : pool_(&pool) {
  chips_.reserve(chips);
  for (std::uint32_t i = 0; i < chips; ++i) {
    chips_.push_back(std::make_unique<nand::FlashChip>(
        geometry, noise, chip_seed(root_seed, i), costs));
  }
  shards_.reserve(static_cast<std::size_t>(chips) * kStripesPerChip);
  for (std::size_t s = 0; s < static_cast<std::size_t>(chips) * kStripesPerChip;
       ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ChipArray::~ChipArray() { drain(); }

std::uint64_t ChipArray::chip_seed(std::uint64_t root_seed,
                                   std::uint32_t chip) {
  return util::hash_words(root_seed, 0xC417A55AULL, chip);
}

void ChipArray::enqueue(std::uint32_t chip, std::uint32_t block,
                        std::function<void()> fn) {
  // Capture the submitter's trace context per operation: the strand pump
  // that eventually runs this op may have been launched under a different
  // request's context (or none), so the causal parent rides with the op.
  if (trace::enabled()) {
    const trace::TraceContext ctx = trace::current();
    if (ctx.active()) {
      fn = [ctx, inner = std::move(fn)] {
        const trace::ContextGuard guard(ctx);
        inner();
      };
    }
  }
  Shard& shard = *shards_.at(shard_of(chip, block));
  {
    const std::lock_guard<std::mutex> lock(drain_mu_);
    ++inflight_;
  }
  bool launch = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.q.push_back(std::move(fn));
    if (!shard.running) {
      shard.running = true;
      launch = true;
    }
  }
  // Only the task that flipped `running` pumps, so the shard is a strand:
  // its queue drains FIFO with no two operations in flight at once.
  if (launch) {
    {
      const std::lock_guard<std::mutex> lock(drain_mu_);
      ++pumps_;
    }
    pool_->submit([this, &shard] { pump(shard); });
  }
}

void ChipArray::pump(Shard& shard) {
  std::size_t done = 0;
  for (;;) {
    std::function<void()> task;
    {
      const std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.q.empty()) {
        shard.running = false;
        break;
      }
      task = std::move(shard.q.front());
      shard.q.pop_front();
    }
    task();
    ++done;
  }
  // Single exit-time accounting touch: drain() only wakes once this pump has
  // finished with the shard, so after drain() returns no pump can still be
  // dereferencing ChipArray state (the shards are safe to destroy).
  const std::lock_guard<std::mutex> lock(drain_mu_);
  inflight_ -= done;
  --pumps_;
  if (inflight_ == 0 && pumps_ == 0) drain_cv_.notify_all();
}

void ChipArray::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return inflight_ == 0 && pumps_ == 0; });
}

std::future<util::Status> ChipArray::submit_erase(std::uint32_t chip,
                                                  std::uint32_t block) {
  auto prom = std::make_shared<std::promise<util::Status>>();
  auto fut = prom->get_future();
  nand::FlashChip* dev = chips_.at(chip).get();
  enqueue(chip, block, [prom, dev, block] {
    prom->set_value(dev->erase_block(block));
  });
  return fut;
}

std::future<util::Status> ChipArray::submit_program(
    std::uint32_t chip, std::uint32_t block, std::uint32_t page,
    std::vector<std::uint8_t> bits) {
  auto prom = std::make_shared<std::promise<util::Status>>();
  auto fut = prom->get_future();
  nand::FlashChip* dev = chips_.at(chip).get();
  auto data = std::make_shared<std::vector<std::uint8_t>>(std::move(bits));
  enqueue(chip, block, [prom, dev, block, page, data] {
    prom->set_value(dev->program_page(block, page, *data));
  });
  return fut;
}

std::future<std::vector<std::uint8_t>> ChipArray::submit_read(
    std::uint32_t chip, std::uint32_t block, std::uint32_t page) {
  auto prom = std::make_shared<std::promise<std::vector<std::uint8_t>>>();
  auto fut = prom->get_future();
  nand::FlashChip* dev = chips_.at(chip).get();
  enqueue(chip, block, [prom, dev, block, page] {
    prom->set_value(dev->read_page(block, page));
  });
  return fut;
}

std::future<std::vector<int>> ChipArray::submit_probe(std::uint32_t chip,
                                                      std::uint32_t block,
                                                      std::uint32_t page) {
  auto prom = std::make_shared<std::promise<std::vector<int>>>();
  auto fut = prom->get_future();
  nand::FlashChip* dev = chips_.at(chip).get();
  enqueue(chip, block, [prom, dev, block, page] {
    prom->set_value(dev->probe_voltages(block, page));
  });
  return fut;
}

std::future<void> ChipArray::submit_on_block(
    std::uint32_t chip, std::uint32_t block,
    std::function<void(nand::FlashChip&)> fn) {
  auto prom = std::make_shared<std::promise<void>>();
  auto fut = prom->get_future();
  nand::FlashChip* dev = chips_.at(chip).get();
  auto body = std::make_shared<std::function<void(nand::FlashChip&)>>(
      std::move(fn));
  enqueue(chip, block, [prom, dev, body] {
    try {
      (*body)(*dev);
      prom->set_value();
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return fut;
}

nand::CostLedger ChipArray::total_ledger() const {
  nand::CostLedger total{};
  for (const auto& c : chips_) {
    const nand::CostLedger l = c->ledger();
    total.time_us += l.time_us;
    total.energy_uj += l.energy_uj;
    total.reads += l.reads;
    total.programs += l.programs;
    total.erases += l.erases;
    total.partial_programs += l.partial_programs;
  }
  return total;
}

}  // namespace stash::par
