#include "stash/par/pool.hpp"

namespace stash::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads <= 1) return;  // inline mode: no workers, submit() runs now
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (threads_.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Belt and braces: run anything still queued (cannot normally happen —
  // workers drain before exiting — but a dropped task would break a future).
  std::function<void()> task;
  while (try_pop(0, task)) task();
}

void ThreadPool::submit(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  // Carry the submitter's trace context to whichever worker runs the task,
  // so causality survives the thread handoff.
  if (trace::enabled()) {
    const trace::TraceContext ctx = trace::current();
    if (ctx.active()) {
      fn = [ctx, inner = std::move(fn)] {
        const trace::ContextGuard guard(ctx);
        inner();
      };
    }
  }
  const std::size_t idx =
      rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    const std::lock_guard<std::mutex> lock(workers_[idx]->mu);
    workers_[idx]->q.push_back(std::move(fn));
  }
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    ++tickets_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  const std::size_t n = workers_.size();
  // Own deque first (front = submission order), then steal from the back
  // of the others, starting at the right-hand neighbour.
  for (std::size_t k = 0; k < n; ++k) {
    Worker& w = *workers_[(self + k) % n];
    const std::lock_guard<std::mutex> lock(w.mu);
    if (w.q.empty()) continue;
    if (k == 0) {
      out = std::move(w.q.front());
      w.q.pop_front();
    } else {
      out = std::move(w.q.back());
      w.q.pop_back();
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (tickets_ > 0) {
      // Consume a ticket and rescan: the push that produced it
      // happened-before our next try_pop, so its task is visible.
      --tickets_;
      continue;
    }
    if (stop_) return;
    wake_cv_.wait(lock, [&] { return stop_ || tickets_ > 0; });
  }
}

}  // namespace stash::par
