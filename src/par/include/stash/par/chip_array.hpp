#pragma once
// stash::par::ChipArray — a sharded multi-chip device layer.
//
// Owns N FlashChips (a multi-die package or a small array of packages, the
// scale §7's throughput projections assume).  Chip i is seeded from
// (root seed, i), so the array's noise is fully determined by one root seed
// and the geometry — rebuilding the array reproduces every chip exactly.
//
// The batch API (submit_erase / submit_program / submit_read / submit_probe)
// returns futures and dispatches through per-(chip, block-stripe) shard
// queues running on a shared ThreadPool:
//
//   * Operations bound for different shards run concurrently — safe because
//     FlashChip gives every block its own RNG stream and lock.
//   * Operations inside one shard run FIFO in submission order — which
//     pins down the one thing FlashChip cannot make order-free, the noise
//     stream of same-block operation sequences.
//
// Together these make a batch deterministic: for a fixed submission order,
// an 8-thread run produces bit-identical voltages, reads and ledger totals
// to a 1-thread run (with an inline pool the shards simply execute during
// submit()).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "stash/nand/chip.hpp"
#include "stash/nand/geometry.hpp"
#include "stash/nand/noise.hpp"
#include "stash/par/pool.hpp"
#include "stash/util/status.hpp"

namespace stash::par {

class ChipArray {
 public:
  /// Builds `chips` FlashChips with identical geometry/noise/costs, chip i
  /// seeded from (root_seed, i).  The pool must outlive the array.
  ChipArray(const nand::Geometry& geometry, const nand::NoiseModel& noise,
            std::uint64_t root_seed, std::uint32_t chips, ThreadPool& pool,
            nand::OpCosts costs = nand::OpCosts{});

  ChipArray(const ChipArray&) = delete;
  ChipArray& operator=(const ChipArray&) = delete;

  /// Drains all shard queues before releasing the chips.
  ~ChipArray();

  [[nodiscard]] std::uint32_t chips() const noexcept {
    return static_cast<std::uint32_t>(chips_.size());
  }
  [[nodiscard]] nand::FlashChip& chip(std::uint32_t i) { return *chips_.at(i); }
  [[nodiscard]] const nand::FlashChip& chip(std::uint32_t i) const {
    return *chips_.at(i);
  }
  /// The seed chip i was built with (derived, not stored on the chip).
  [[nodiscard]] static std::uint64_t chip_seed(std::uint64_t root_seed,
                                               std::uint32_t chip);

  // ---- Batch operations ---------------------------------------------------
  // Each call enqueues onto the (chip, block) shard and returns immediately;
  // the future resolves when the shard strand executes the operation.

  std::future<util::Status> submit_erase(std::uint32_t chip,
                                         std::uint32_t block);
  std::future<util::Status> submit_program(std::uint32_t chip,
                                           std::uint32_t block,
                                           std::uint32_t page,
                                           std::vector<std::uint8_t> bits);
  std::future<std::vector<std::uint8_t>> submit_read(std::uint32_t chip,
                                                     std::uint32_t block,
                                                     std::uint32_t page);
  std::future<std::vector<int>> submit_probe(std::uint32_t chip,
                                             std::uint32_t block,
                                             std::uint32_t page);
  /// Arbitrary work on the shard strand of (chip, block) — lets callers
  /// sequence custom per-block operation chains (e.g. a whole embed loop)
  /// against the batch traffic.
  std::future<void> submit_on_block(std::uint32_t chip, std::uint32_t block,
                                    std::function<void(nand::FlashChip&)> fn);

  /// Block until every submitted operation has executed.
  void drain();

  /// Aggregate ledger across all chips (exact: fixed-point totals).
  [[nodiscard]] nand::CostLedger total_ledger() const;

 private:
  /// A FIFO strand: at most one pool task pumps a shard at a time, so the
  /// shard's operations execute in submission order.
  struct Shard {
    std::mutex mu;
    std::deque<std::function<void()>> q;
    bool running = false;
  };

  static constexpr std::uint32_t kStripesPerChip = 16;

  [[nodiscard]] std::size_t shard_of(std::uint32_t chip,
                                     std::uint32_t block) const {
    return static_cast<std::size_t>(chip) * kStripesPerChip +
           block % kStripesPerChip;
  }
  void enqueue(std::uint32_t chip, std::uint32_t block,
               std::function<void()> fn);
  void pump(Shard& shard);

  ThreadPool* pool_;
  std::vector<std::unique_ptr<nand::FlashChip>> chips_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t inflight_ = 0;   // operations submitted but not yet executed
  std::size_t pumps_ = 0;      // pump tasks launched but not yet exited
};

}  // namespace stash::par
