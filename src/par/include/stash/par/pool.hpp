#pragma once
// stash::par::ThreadPool — a deterministic work-stealing thread pool.
//
// The pool itself is a conventional executor: per-worker deques, idle
// workers steal from their neighbours, submit() round-robins new work.
// Determinism comes from how the callers use it, and the pool supplies the
// two shapes that make deterministic parallelism easy:
//
//   * parallel_for(n, fn) / map<T>(n, fn): an *indexed* fan-out.  fn(i) may
//     run on any thread in any order, but result i lands in slot i, so a
//     caller that reduces the slots in index order produces output that is
//     byte-identical for any thread count — provided fn(i) itself is
//     deterministic and the iterations are independent (stash's benches get
//     this from per-trial chips and FlashChip's per-block RNG streams).
//   * threads <= 1 construct a pool with no workers at all: submit() and
//     parallel_for() execute inline on the caller, so `--threads 1` is
//     exactly the serial code path, not a one-worker approximation of it.
//
// Exceptions thrown by fn propagate: the first one (in completion order) is
// rethrown from parallel_for()/map() after all iterations finish.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "stash/trace/trace.hpp"

namespace stash::par {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 or 1 means "inline mode" (no workers,
  /// everything runs on the calling thread).
  explicit ThreadPool(unsigned threads = hardware_threads());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins after draining: every task submitted before destruction runs.
  ~ThreadPool();

  /// Worker count (0 in inline mode).
  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  [[nodiscard]] static unsigned hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

  /// Enqueue fire-and-forget work (runs inline when threads() == 0).
  void submit(std::function<void()> fn);

  /// submit() with a future for the callable's result.
  template <typename Fn>
  auto async(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    auto fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Run fn(i) for every i in [0, n), blocking until all complete.  The
  /// calling thread participates.  Iterations must be independent.
  ///
  /// Trace propagation: the caller's TraceContext is captured once and every
  /// iteration runs under its own ContextGuard — including on the inline
  /// path — so span identity inside fn(i) never depends on which thread (or
  /// how many) ran the iteration.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    const trace::TraceContext ctx = trace::current();
    auto run = [&fn, ctx](std::size_t i) {
      const trace::ContextGuard guard(ctx);
      fn(i);
    };
    if (threads() == 0 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) run(i);
      return;
    }
    struct Join {
      std::mutex mu;
      std::condition_variable cv;
      std::size_t live;
      std::exception_ptr err;
      explicit Join(std::size_t drivers) : live(drivers) {}
    };
    // One driver per worker (capped at n) plus the caller; each driver
    // claims indices from the shared cursor until the range is exhausted.
    const std::size_t helpers = std::min<std::size_t>(threads(), n) - 1;
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto join = std::make_shared<Join>(helpers);
    auto drive = [next, join, n, &run] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          run(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(join->mu);
          if (!join->err) join->err = std::current_exception();
        }
      }
    };
    for (std::size_t d = 0; d < helpers; ++d) {
      submit([join, drive] {
        drive();
        const std::lock_guard<std::mutex> lock(join->mu);
        if (--join->live == 0) join->cv.notify_all();
      });
    }
    drive();  // caller is a driver too
    std::unique_lock<std::mutex> lock(join->mu);
    join->cv.wait(lock, [&] { return join->live == 0; });
    if (join->err) std::rethrow_exception(join->err);
  }

  /// Indexed map: returns {fn(0), ..., fn(n-1)} with result i in slot i.
  /// T must be default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  /// One worker's deque.  The owner pops from the front; thieves take from
  /// the back, so a long submission run drains mostly in order.
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  /// Wake tickets: one per submitted task, consumed by waking workers.  A
  /// consumed ticket guarantees the consumer rescans every deque, so a task
  /// can never be stranded while all workers sleep.
  std::size_t tickets_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> rr_{0};
};

}  // namespace stash::par
